package squid_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// Old-format query messages as they existed before trace propagation: no
// Trace ref, no Spans. Gob matches struct fields by name, so encoding
// these and decoding into the current types reproduces exactly what an
// un-upgraded peer puts on the wire.
type legacyLookupMsg struct {
	QID     uint64
	Query   keyspace.Query
	Key     uint64
	ReplyTo transport.Addr
	Token   uint64
}

type legacyClusterQueryMsg struct {
	QID      uint64
	Query    keyspace.Query
	Clusters []squid.ClusterRef
	ReplyTo  transport.Addr
	Token    uint64
	Ack      bool
}

type legacySubResultMsg struct {
	QID        uint64
	Token      uint64
	Matches    []squid.Element
	Incomplete bool
}

// TestWireLegacyDecode locks the gob wire compatibility promise: payloads
// from peers that predate tracing decode cleanly, and their absent trace
// context defaults to a sampled root span (TraceRef.OrRoot). The reverse
// direction — new payloads read by old peers — must also decode, with the
// unknown trace fields skipped.
func TestWireLegacyDecode(t *testing.T) {
	query := keyspace.Query{keyspace.Prefix("comp"), keyspace.Wildcard()}

	t.Run("lookup", func(t *testing.T) {
		old := legacyLookupMsg{QID: 7, Query: query, Key: 99, ReplyTo: "r", Token: 5}
		var cur squid.LookupMsg
		reGob(t, old, &cur)
		if uint64(cur.QID) != old.QID || cur.Key != old.Key || cur.ReplyTo != old.ReplyTo || cur.Token != old.Token {
			t.Fatalf("legacy fields mangled: %+v", cur)
		}
		if cur.Trace != (telemetry.TraceRef{}) {
			t.Fatalf("legacy payload decoded a non-zero trace ref: %+v", cur.Trace)
		}
		ref := cur.Trace.OrRoot()
		if !ref.Sampled() || ref.Parent != 0 || ref.Depth != 0 {
			t.Fatalf("absent trace context must default to a sampled root span, got %+v", ref)
		}
	})

	t.Run("cluster-query", func(t *testing.T) {
		old := legacyClusterQueryMsg{
			QID: 3, Query: query, Clusters: []squid.ClusterRef{{Prefix: 9, Level: 2, Complete: true}},
			ReplyTo: "r", Token: 8, Ack: true,
		}
		var cur squid.ClusterQueryMsg
		reGob(t, old, &cur)
		if uint64(cur.QID) != old.QID || len(cur.Clusters) != 1 || cur.Clusters[0] != old.Clusters[0] || !cur.Ack {
			t.Fatalf("legacy fields mangled: %+v", cur)
		}
		if !cur.Trace.OrRoot().Sampled() {
			t.Fatal("absent trace context must default to a sampled root span")
		}
	})

	t.Run("sub-result", func(t *testing.T) {
		old := legacySubResultMsg{QID: 3, Token: 8, Incomplete: true}
		var cur squid.SubResultMsg
		reGob(t, old, &cur)
		if uint64(cur.QID) != old.QID || !cur.Incomplete || len(cur.Spans) != 0 {
			t.Fatalf("legacy fields mangled: %+v", cur)
		}
	})

	t.Run("new-to-old", func(t *testing.T) {
		cur := squid.ClusterQueryMsg{
			QID: 4, Query: query, ReplyTo: "r", Token: 9,
			Trace: telemetry.TraceRef{Parent: 11, Depth: 2, Mode: telemetry.TraceOn},
		}
		var old legacyClusterQueryMsg
		reGob(t, cur, &old)
		if old.QID != uint64(cur.QID) || old.ReplyTo != cur.ReplyTo || old.Token != cur.Token {
			t.Fatalf("old receiver mangled new payload: %+v", old)
		}
		res := squid.SubResultMsg{QID: 4, Token: 9, Spans: []telemetry.Span{{QID: 4, ID: 1, Node: 2}}}
		var oldRes legacySubResultMsg
		reGob(t, res, &oldRes)
		if oldRes.QID != uint64(res.QID) || oldRes.Token != res.Token {
			t.Fatalf("old receiver mangled new sub-result: %+v", oldRes)
		}
	})
}

// reGob encodes src and decodes the stream into dst, concretely (not via a
// registered interface envelope, whose type names would collide).
func reGob(t *testing.T, src, dst any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		t.Fatalf("encode %T: %v", src, err)
	}
	if err := gob.NewDecoder(&buf).Decode(dst); err != nil {
		t.Fatalf("decode %T into %T: %v", src, dst, err)
	}
}

// tracedNetwork builds a simulated network with query tracing enabled and
// the fault layer installed (quiet until a drop rate is set).
func tracedNetwork(t *testing.T, nodes int, seed int64) *sim.Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: seed,
		Engine: squid.Options{
			SubtreeTimeout: 50 * time.Millisecond,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Second,
		},
		Chord:  chordRetryConfig(),
		Faults: &transport.FaultConfig{Seed: seed + 1},
		Trace:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// assertTraceCoversOwners checks the headline tracing guarantee: the
// owner of every returned match recorded a span in the reassembled tree.
func assertTraceCoversOwners(t *testing.T, label string, nw *sim.Network, tr telemetry.Trace, matches []squid.Element) {
	t.Helper()
	nodes := tr.Nodes()
	for _, m := range matches {
		idx, err := nw.Space.Index(m.Values)
		if err != nil {
			t.Fatalf("%s: index %v: %v", label, m.Values, err)
		}
		owner := nw.SuccessorOf(idx)
		if !nodes[uint64(owner.ID())] {
			t.Fatalf("%s: owner %x of match %q (key %x) missing from trace nodes %v",
				label, uint64(owner.ID()), m.Data, idx, nodes)
		}
	}
}

// TestTraceCompleteness runs flexible and exact queries on a healthy
// traced network and checks the reassembled tree: one root span, every
// match attributed, and every owner of a returned key visited.
func TestTraceCompleteness(t *testing.T) {
	nw := tracedNetwork(t, 16, 7001)
	rng := rand.New(rand.NewSource(7002))
	elems := chaosPublish(t, nw, rng, 200)

	for _, qs := range []string{"(a*, *)", "(*, m*)", "(b-f, *)", "(*, *)"} {
		q := keyspace.MustParse(qs)
		res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
		if res.Err != nil {
			t.Fatalf("%s: %v", qs, res.Err)
		}
		tr, ok := nw.TraceForQuery(res.QID)
		if !ok {
			t.Fatalf("%s: no trace recorded", qs)
		}
		if tr.Partial {
			t.Fatalf("%s: healthy network produced a partial trace", qs)
		}
		if root := tr.Root(); root == nil {
			t.Fatalf("%s: trace has no root span", qs)
		}
		if got := tr.Matches(); got != len(res.Matches) {
			t.Fatalf("%s: trace attributes %d matches, result has %d", qs, got, len(res.Matches))
		}
		if len(tr.Lost()) != 0 {
			t.Fatalf("%s: healthy network recorded lost spans", qs)
		}
		assertTraceCoversOwners(t, qs, nw, tr, res.Matches)
	}

	// The exact-point path (single DHT lookup) must trace too.
	e := elems[rng.Intn(len(elems))]
	q := keyspace.MustParse(fmt.Sprintf("(%s, %s)", e.Values[0], e.Values[1]))
	res, _ := nw.Query(0, q)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	tr, ok := nw.TraceForQuery(res.QID)
	if !ok {
		t.Fatal("exact query: no trace recorded")
	}
	found := false
	for _, s := range tr.Spans {
		if s.Kind == "lookup" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact query trace has no lookup span: %+v", tr.Spans)
	}
	assertTraceCoversOwners(t, "exact", nw, tr, res.Matches)
}

// TestChaosTraceCoverage is the tracing chaos soak: under sustained
// message drops, every query that claims completeness has a trace
// covering the owners of all returned keys, and every partial result's
// trace is marked partial with the abandoned subtrees recorded as lost
// spans. Drops only — crashes change key ownership via replica promotion,
// which would make the owner oracle unsound.
func TestChaosTraceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("trace chaos soak skipped in short mode")
	}
	nw := tracedNetwork(t, 16, 8001)
	rng := rand.New(rand.NewSource(8002))
	chaosPublish(t, nw, rng, 250)

	queries := []keyspace.Query{
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(b-f, *)"),
		keyspace.MustParse("(*, *)"),
	}

	nw.Faulty.SetDropRate(0.15)
	complete, partial := 0, 0
	for i := 0; i < 60; i++ {
		q := queries[rng.Intn(len(queries))]
		truth := dataSet(nw.BruteForceMatches(q))
		res, _ := nw.Query(rng.Intn(len(nw.Peers)), q)
		label := fmt.Sprintf("query %d %s", i, q)
		checkSound(t, label, res, truth)

		tr, ok := nw.TraceForQuery(res.QID)
		if !ok {
			t.Fatalf("%s: no trace recorded", label)
		}
		if res.Err == nil {
			complete++
			if tr.Partial {
				t.Fatalf("%s: complete result but partial trace", label)
			}
			assertTraceCoversOwners(t, label, nw, tr, res.Matches)
		} else {
			partial++
			if !tr.Partial {
				t.Fatalf("%s: partial result (%v) but trace not marked partial", label, res.Err)
			}
			if len(tr.Lost()) == 0 {
				t.Fatalf("%s: partial trace records no lost spans", label)
			}
		}
	}
	if complete == 0 {
		t.Error("no complete queries under drops — recovery never succeeded")
	}
	if partial == 0 {
		t.Error("no partial queries under drops — faults were not exercised")
	}
	t.Logf("trace chaos: %d complete / %d partial; faults %+v", complete, partial, nw.Faulty.Stats())
}

// TestTelemetryHTTPEndToEnd serves a live network's registry and trace
// store over HTTP — exactly what squid-node -http exposes and squidctl
// consumes — and checks both endpoints return the query that just ran.
func TestTelemetryHTTPEndToEnd(t *testing.T) {
	nw := tracedNetwork(t, 8, 9001)
	rng := rand.New(rand.NewSource(9002))
	chaosPublish(t, nw, rng, 100)
	res, _ := nw.Query(0, keyspace.MustParse("(*, *)"))
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	srv := httptest.NewServer(telemetry.NewHandler(nw.Telemetry, nw.Traces))
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"squid_engine_queries_total",
		"squid_chord_lookup_hops",
		"squid_transport_inproc_sent_total",
		"squid_store_keys_held",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	var list []struct {
		QID uint64 `json:"qid"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/traces")), &list); err != nil {
		t.Fatalf("decode /traces: %v", err)
	}
	found := false
	for _, e := range list {
		if e.QID == uint64(res.QID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("/traces does not list query %d: %+v", res.QID, list)
	}

	var tr telemetry.Trace
	if err := json.Unmarshal([]byte(httpGet(t, fmt.Sprintf("%s/trace?id=%d", srv.URL, res.QID))), &tr); err != nil {
		t.Fatalf("decode /trace: %v", err)
	}
	if tr.QID != res.QID || len(tr.Spans) == 0 {
		t.Fatalf("/trace returned %+v", tr)
	}
	assertTraceCoversOwners(t, "http", nw, tr, res.Matches)
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, buf.String())
	}
	return buf.String()
}
