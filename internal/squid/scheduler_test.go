package squid_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/transport"
)

// schedSpace is the small keyword space shared by the scheduler tests.
func schedSpace(t *testing.T) *keyspace.Space {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// schedCorpus publishes a deterministic corpus through the overlay.
func schedCorpus(t *testing.T, nw *sim.Network, n int, seed int64) []squid.Element {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	elems := make([]squid.Element, 0, n)
	for i := 0; i < n; i++ {
		e := squid.Element{
			Values: []string{randSoakWord(rng), randSoakWord(rng)},
			Data:   fmt.Sprintf("sched-%05d", i),
		}
		if err := nw.Publish(rng.Intn(len(nw.Peers)), e); err != nil {
			t.Fatal(err)
		}
		elems = append(elems, e)
	}
	nw.Quiesce()
	return elems
}

// TestSchedulerConcurrentQueriesSound fires many queries concurrently from
// every peer — no quiesce between them, so refinement jobs from different
// queries interleave on every node's worker pool — and checks each result
// for exact recall. Run under -race this is the scheduler's memory-model
// test: workers share the stores and arc snapshots with concurrent
// handovers and publishes only through the documented synchronization.
func TestSchedulerConcurrentQueriesSound(t *testing.T) {
	nw, err := sim.Build(sim.Config{Nodes: 10, Space: schedSpace(t), Seed: 7001})
	if err != nil {
		t.Fatal(err)
	}
	schedCorpus(t, nw, 250, 7002)

	queries := []keyspace.Query{
		keyspace.MustParse("(*, *)"),
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(b-f, *)"),
		keyspace.MustParse("(q*, a-m)"),
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = len(nw.BruteForceMatches(q))
	}

	const perPeer = 3
	total := len(nw.Peers) * perPeer
	type outcome struct {
		qi  int
		res squid.Result
	}
	results := make(chan outcome, total)
	for pi, p := range nw.Peers {
		p := p
		for k := 0; k < perPeer; k++ {
			qi := (pi + k) % len(queries)
			sim.MustInvoke(p, func() {
				p.Engine.Query(queries[qi], func(r squid.Result) {
					results <- outcome{qi: qi, res: r}
				})
			})
		}
	}
	for i := 0; i < total; i++ {
		select {
		case out := <-results:
			if out.res.Err != nil {
				t.Fatalf("query %s: %v", queries[out.qi], out.res.Err)
			}
			if len(out.res.Matches) != want[out.qi] {
				t.Errorf("query %s: %d matches, want %d", queries[out.qi], len(out.res.Matches), want[out.qi])
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("timed out with %d/%d results", i, total)
		}
	}
	nw.Quiesce()
}

// TestSchedulerMatchesSerial pins scheduled processing to the serial
// baseline: identical networks — one with the worker pool, one refining
// inline on the delivery goroutine — must produce identical results AND
// identical per-query cost metrics. The scheduler moves work off the
// delivery goroutine; it must not change what the queries cost.
func TestSchedulerMatchesSerial(t *testing.T) {
	space := schedSpace(t)
	build := func(serial bool) *sim.Network {
		opts := squid.Options{}
		if serial {
			opts.Workers = -1
		} else {
			opts.Workers = 2
		}
		nw, err := sim.Build(sim.Config{Nodes: 8, Space: space, Seed: 7101, Engine: opts})
		if err != nil {
			t.Fatal(err)
		}
		schedCorpus(t, nw, 200, 7102)
		return nw
	}
	serial, sched := build(true), build(false)

	for _, qs := range []string{"(*, *)", "(a*, *)", "(*, b-k)", "(m*, t*)"} {
		q := keyspace.MustParse(qs)
		for via := range serial.Peers {
			resA, qmA := serial.Query(via, q)
			resB, qmB := sched.Query(via, q)
			if resA.Err != nil || resB.Err != nil {
				t.Fatalf("%s via %d: serial err=%v sched err=%v", qs, via, resA.Err, resB.Err)
			}
			if len(resA.Matches) != len(resB.Matches) {
				t.Errorf("%s via %d: serial %d matches, sched %d", qs, via, len(resA.Matches), len(resB.Matches))
			}
			if qmA.ClusterMessages != qmB.ClusterMessages || qmA.PayloadHops != qmB.PayloadHops ||
				qmA.RouteMessages != qmB.RouteMessages || qmA.BatchMessages != qmB.BatchMessages {
				t.Errorf("%s via %d: cost diverged: serial %+v sched %+v", qs, via, qmA, qmB)
			}
		}
	}
}

// TestSchedulerFIFOOrder pins the pool's fairness discipline: with one
// worker, jobs admitted in one delivery-goroutine turn complete in
// submission order (the queue is FIFO, completions are delivered in
// order). A later cheap query must not overtake an earlier one.
func TestSchedulerFIFOOrder(t *testing.T) {
	nw, err := sim.BuildWithIDs(sim.Config{
		Space:  schedSpace(t),
		Engine: squid.Options{Workers: 1},
	}, []uint64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	schedCorpus(t, nw, 100, 7201)
	p := nw.Peers[0]

	const n = 6
	order := make(chan squid.QueryID, n)
	var submitted []squid.QueryID
	doneSubmit := make(chan struct{})
	sim.MustInvoke(p, func() {
		defer close(doneSubmit)
		for i := 0; i < n; i++ {
			qid, err := p.Engine.QueryCtx(context.Background(), keyspace.MustParse("(*, *)"), func(r squid.Result) {
				order <- r.QID
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			submitted = append(submitted, qid)
		}
	})
	<-doneSubmit
	for i := 0; i < n; i++ {
		select {
		case got := <-order:
			if got != submitted[i] {
				t.Fatalf("completion %d: qid %d, want %d (FIFO violated)", i, got, submitted[i])
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for completion %d", i)
		}
	}
}

// TestOverloadShedsRootQueries drives the admission cap deterministically:
// submissions inside a single delivery-goroutine turn cannot be drained
// (completions queue behind the running handler), so the cap-th-plus-one
// query must shed synchronously with ErrOverloaded — observable through
// the typed error, its retry-after hint, and the telemetry registry.
func TestOverloadShedsRootQueries(t *testing.T) {
	nw, err := sim.BuildWithIDs(sim.Config{
		Space:  schedSpace(t),
		Engine: squid.Options{Workers: 2, MaxInflight: 2},
	}, []uint64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	schedCorpus(t, nw, 50, 7301)
	p := nw.Peers[0]

	const n = 6
	results := make(chan squid.Result, n)
	errs := make(chan error, n)
	sim.MustInvoke(p, func() {
		for i := 0; i < n; i++ {
			_, err := p.Engine.QueryCtx(context.Background(), keyspace.MustParse("(*, *)"), func(r squid.Result) {
				results <- r
			})
			errs <- err
		}
	})
	admitted, shed := 0, 0
	for i := 0; i < n; i++ {
		err := <-errs
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, squid.ErrOverloaded):
			shed++
			var oe *squid.OverloadError
			if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
				t.Errorf("shed error %v: want *OverloadError with positive RetryAfter", err)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if admitted != 2 || shed != n-2 {
		t.Fatalf("admitted=%d shed=%d, want 2 and %d (cap is deterministic within one turn)", admitted, shed, n-2)
	}
	for i := 0; i < admitted; i++ {
		select {
		case r := <-results:
			if r.Err != nil {
				t.Fatalf("admitted query failed: %v", r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted query never completed")
		}
	}
	var buf bytes.Buffer
	if err := nw.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`squid_sched_shed_total{kind="root"`)) &&
		!bytes.Contains(buf.Bytes(), []byte(`kind="root"`)) {
		t.Errorf("telemetry does not expose the root shed counter:\n%s", buf.String())
	}
}

// TestQueryCtxCancellation covers the three context outcomes: a context
// already done fails synchronously (the callback never fires), a
// cancellation mid-flight completes the query with the context's error and
// the matches gathered so far, and a context deadline bounds a query that
// would otherwise hang forever on a dead peer.
func TestQueryCtxCancellation(t *testing.T) {
	space := schedSpace(t)
	build := func(seed int64) *sim.Network {
		nw, err := sim.Build(sim.Config{
			Nodes: 6, Space: space, Seed: seed,
			// No SubtreeTimeout and no QueryDeadline: nothing but the
			// context can end a query whose child subtree is black-holed.
			Faults: &transport.FaultConfig{Seed: seed + 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		schedCorpus(t, nw, 120, seed+2)
		return nw
	}

	t.Run("already-done", func(t *testing.T) {
		nw := build(7401)
		p := nw.Peers[0]
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		errCh := make(chan error, 1)
		sim.MustInvoke(p, func() {
			_, err := p.Engine.QueryCtx(ctx, keyspace.MustParse("(*, *)"), func(squid.Result) {
				t.Error("callback fired for a context that was already done")
			})
			errCh <- err
		})
		if err := <-errCh; !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("cancel-mid-flight", func(t *testing.T) {
		nw := build(7501)
		// Black-hole every peer but the root: remote subtrees never answer,
		// so the query stays open until the context ends it.
		for _, p := range nw.Peers[1:] {
			nw.Faulty.Crash(p.Addr())
		}
		p := nw.Peers[0]
		ctx, cancel := context.WithCancel(context.Background())
		resCh := make(chan squid.Result, 1)
		errCh := make(chan error, 1)
		sim.MustInvoke(p, func() {
			_, err := p.Engine.QueryCtx(ctx, keyspace.MustParse("(*, *)"), func(r squid.Result) {
				resCh <- r
			})
			errCh <- err
		})
		if err := <-errCh; err != nil {
			t.Fatalf("QueryCtx: %v", err)
		}
		select {
		case r := <-resCh:
			t.Fatalf("query completed before cancel: %+v", r)
		case <-time.After(50 * time.Millisecond):
		}
		cancel()
		select {
		case r := <-resCh:
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("result err = %v, want context.Canceled", r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled query never delivered its result")
		}
	})

	t.Run("deadline", func(t *testing.T) {
		nw := build(7601)
		for _, p := range nw.Peers[1:] {
			nw.Faulty.Crash(p.Addr())
		}
		p := nw.Peers[0]
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		resCh := make(chan squid.Result, 1)
		sim.MustInvoke(p, func() {
			if _, err := p.Engine.QueryCtx(ctx, keyspace.MustParse("(*, *)"), func(r squid.Result) {
				resCh <- r
			}); err != nil {
				t.Errorf("QueryCtx: %v", err)
			}
		})
		select {
		case r := <-resCh:
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("result err = %v, want context.DeadlineExceeded", r.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadline-bounded query never delivered its result")
		}
	})
}

// TestWrapArcBatchedDispatch pins batched dispatch on the topology that
// produces it. The query (*, e) decomposes into curve clusters at both
// extremes of the index space (the Hilbert curve splits a fixed second
// axis across the first and last quadrants) plus a group in between. Node
// identifiers are placed so the wrap-arc owner (id 0x10000000, predecessor
// 0xD0000000) owns both extreme groups while a middle node owns the rest:
// a dispatch round at either non-owning peer then resolves the wrap
// owner's low and high runs as SEPARATE runs of its sorted cluster list —
// split by the middle node's run — and must coalesce them into one
// BatchMsg. At the middle node the two runs are adjacent, so plain
// run-aggregation merges them into a single ClusterQueryMsg and no batch
// is needed; both cases keep exact recall and exact per-message counts.
func TestWrapArcBatchedDispatch(t *testing.T) {
	space := schedSpace(t)
	var elems []squid.Element
	for a := 0; a < 26; a++ {
		for b := 0; b < 26; b += 2 {
			elems = append(elems, squid.Element{
				Values: []string{string(rune('a' + a)), string(rune('a' + b))},
				Data:   fmt.Sprintf("e-%c%c", 'a'+a, 'a'+b),
			})
		}
	}
	ids := []uint64{0x10000000, 0x40000000, 0xA0000000, 0xD0000000}
	nw, err := sim.BuildWithIDs(sim.Config{
		Space: space,
		// A fine-grained initial cover: coarse merging must not fuse the
		// region's three cluster groups into one span, or every dispatch
		// degenerates to a single forward.
		Engine: squid.Options{InitialClusters: 64},
	}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range elems {
		if err := nw.Publish(i%len(nw.Peers), e); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()

	// Record the shape of every dispatch round: a batch is a round entry
	// with more than one message buffered for one destination.
	var rounds [][]int
	squid.SetDebugDispatch(func(_ chord.ID, entries []int) {
		rounds = append(rounds, append([]int(nil), entries...))
	})
	defer squid.SetDebugDispatch(nil)

	q := keyspace.MustParse("(*, e)")
	want := len(nw.BruteForceMatches(q))
	if want == 0 {
		t.Fatal("query matches nothing; corpus construction broken")
	}
	batched := 0
	for via := 0; via < len(nw.Peers); via++ {
		res, qm := nw.Query(via, q)
		if res.Err != nil {
			t.Fatalf("via %d: %v", via, res.Err)
		}
		if len(res.Matches) != want {
			t.Errorf("via %d: %d matches, want %d", via, len(res.Matches), want)
		}
		// Exact-count invariant: every ClusterQueryMsg is tallied
		// individually whether or not it rode inside a BatchMsg.
		if qm.PayloadHops != qm.ClusterMessages {
			t.Errorf("via %d: batching perturbed counts: %+v", via, qm)
		}
		if via >= 2 && qm.BatchMessages == 0 {
			t.Errorf("via %d: wrap owner's split runs did not coalesce into a BatchMsg", via)
		}
		batched += qm.BatchMessages
	}
	if batched == 0 {
		t.Fatal("no BatchMsg coalesced across wrap-arc dispatch rounds")
	}
	coalesced := false
	for _, r := range rounds {
		for _, n := range r {
			if n > 1 {
				coalesced = true
			}
		}
	}
	if !coalesced {
		t.Error("no dispatch round buffered >1 message for one destination")
	}
}

// TestChaosOverloadSoak combines the chaos drop rate with a tight
// admission cap: bursts of queries (submitted in one delivery-goroutine
// turn, so the cap deterministically sheds part of each burst) ride a 15%
// lossy transport. The contract: every query resolves — complete, an
// explicit partial, or an explicit overload rejection — and never hangs;
// results remain sound throughout.
func TestChaosOverloadSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos overload soak skipped in short mode")
	}
	space := schedSpace(t)
	nw, err := sim.Build(sim.Config{
		Nodes: 12, Space: space, Seed: 7701,
		Engine: squid.Options{
			Replicas:       2,
			SubtreeTimeout: 50 * time.Millisecond,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Second,
			Workers:        2,
			MaxInflight:    3,
		},
		Chord:  chordRetryConfig(),
		Faults: &transport.FaultConfig{Seed: 7702},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7703))
	chaosPublish(t, nw, rng, 200)
	nw.Faulty.SetDropRate(0.15)

	queries := []keyspace.Query{
		keyspace.MustParse("(*, *)"),
		keyspace.MustParse("(a*, *)"),
		keyspace.MustParse("(*, m*)"),
		keyspace.MustParse("(b-f, *)"),
	}
	truth := make([]map[string]bool, len(queries))
	for i, q := range queries {
		truth[i] = dataSet(nw.BruteForceMatches(q))
	}

	const rounds, burst = 6, 8
	complete, partial, overloaded := 0, 0, 0
	for round := 0; round < rounds; round++ {
		p := nw.Peers[rng.Intn(len(nw.Peers))]
		qi := rng.Intn(len(queries))
		results := make(chan squid.Result, burst)
		sim.MustInvoke(p, func() {
			for i := 0; i < burst; i++ {
				p.Engine.Query(queries[qi], func(r squid.Result) { results <- r })
			}
		})
		for i := 0; i < burst; i++ {
			select {
			case r := <-results:
				label := fmt.Sprintf("round %d query %d", round, i)
				switch {
				case r.Err == nil:
					checkSound(t, label, r, truth[qi])
					complete++
				case errors.Is(r.Err, squid.ErrOverloaded):
					overloaded++
				case errors.Is(r.Err, squid.ErrPartialResult) || errors.Is(r.Err, context.DeadlineExceeded):
					checkSound(t, label, r, truth[qi])
					partial++
				default:
					t.Fatalf("%s: unexpected error class: %v", label, r.Err)
				}
			case <-time.After(20 * time.Second):
				t.Fatalf("round %d: query %d hung past every deadline", round, i)
			}
		}
		nw.Quiesce()
	}
	if overloaded == 0 {
		t.Error("no query shed despite bursts exceeding the admission cap")
	}
	if complete == 0 {
		t.Error("no query completed — load was not realistic")
	}
	var buf bytes.Buffer
	if err := nw.Telemetry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("squid_sched_shed_total")) {
		t.Error("telemetry does not expose shed counters")
	}
	t.Logf("overload soak: %d complete / %d partial / %d overloaded", complete, partial, overloaded)
}
