package transport

import (
	"sync"
	"testing"
	"time"
)

// faultRecorder collects delivered payloads in order.
type faultRecorder struct {
	mu   sync.Mutex
	msgs []any
}

func (r *faultRecorder) Deliver(_ Addr, msg any) {
	r.mu.Lock()
	r.msgs = append(r.msgs, msg)
	r.mu.Unlock()
}

func (r *faultRecorder) snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]any(nil), r.msgs...)
}

// runSchedule sends n sequenced messages a->b through a fresh Faulty
// network with the given seed and returns which sequence numbers arrived.
func runSchedule(t *testing.T, seed int64, rate float64, n int) []any {
	t.Helper()
	f := NewFaulty(NewInproc(), FaultConfig{Seed: seed, DropRate: rate})
	rec := &faultRecorder{}
	a, err := f.Listen("a", HandlerFunc(func(Addr, any) {}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("b", rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	f.Quiesce()
	return rec.snapshot()
}

// TestFaultyDeterministicSchedule is the reproducibility guarantee: the
// same seed yields exactly the same drop schedule; a different seed yields
// a different one.
func TestFaultyDeterministicSchedule(t *testing.T) {
	const n = 400
	got1 := runSchedule(t, 42, 0.3, n)
	got2 := runSchedule(t, 42, 0.3, n)
	if len(got1) != len(got2) {
		t.Fatalf("same seed delivered %d vs %d messages", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("same seed diverged at delivery %d: %v vs %v", i, got1[i], got2[i])
		}
	}
	if len(got1) == 0 || len(got1) == n {
		t.Fatalf("drop rate 0.3 delivered %d/%d — lottery not applied", len(got1), n)
	}
	other := runSchedule(t, 43, 0.3, n)
	same := len(other) == len(got1)
	if same {
		for i := range other {
			if other[i] != got1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultySelfSendExempt: self-sends must never be faulted — both
// transports use them to drive the endpoint's own goroutine.
func TestFaultySelfSendExempt(t *testing.T) {
	f := NewFaulty(NewInproc(), FaultConfig{Seed: 1, DropRate: 1.0})
	rec := &faultRecorder{}
	a, err := f.Listen("a", rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send("a", i); err != nil {
			t.Fatal(err)
		}
	}
	f.Quiesce()
	if got := len(rec.snapshot()); got != 10 {
		t.Fatalf("self-sends delivered %d/10 under drop rate 1.0", got)
	}
}

func TestFaultyPartitionAndHeal(t *testing.T) {
	f := NewFaulty(NewInproc(), FaultConfig{Seed: 7})
	rec := &faultRecorder{}
	a, err := f.Listen("a", HandlerFunc(func(Addr, any) {}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("b", rec); err != nil {
		t.Fatal(err)
	}

	f.Partition([]Addr{"a"}, []Addr{"b"})
	if err := a.Send("b", "lost"); err != nil {
		t.Fatal(err)
	}
	f.Quiesce()
	if len(rec.snapshot()) != 0 {
		t.Fatal("message crossed an active partition")
	}
	if s := f.Stats(); s.PartitionDrops != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", s.PartitionDrops)
	}

	f.Heal()
	if err := a.Send("b", "through"); err != nil {
		t.Fatal(err)
	}
	f.Quiesce()
	if got := rec.snapshot(); len(got) != 1 || got[0] != "through" {
		t.Fatalf("after heal got %v, want [through]", got)
	}
}

func TestFaultyCrashRestart(t *testing.T) {
	f := NewFaulty(NewInproc(), FaultConfig{Seed: 7})
	rec := &faultRecorder{}
	a, err := f.Listen("a", HandlerFunc(func(Addr, any) {}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("b", rec); err != nil {
		t.Fatal(err)
	}

	f.Crash("b")
	// Both directions are black holes while crashed, and the sender sees
	// success — a crash is indistinguishable from loss.
	if err := a.Send("b", "vanished"); err != nil {
		t.Fatalf("send to crashed endpoint: %v", err)
	}
	f.Quiesce()
	if len(rec.snapshot()) != 0 {
		t.Fatal("crashed endpoint received a message")
	}
	if s := f.Stats(); s.CrashDrops != 1 {
		t.Fatalf("CrashDrops = %d, want 1", s.CrashDrops)
	}

	f.Restart("b")
	if err := a.Send("b", "back"); err != nil {
		t.Fatal(err)
	}
	f.Quiesce()
	if got := rec.snapshot(); len(got) != 1 || got[0] != "back" {
		t.Fatalf("after restart got %v, want [back]", got)
	}
}

// TestFaultyDelayQuiesce: Quiesce must account for messages sitting in the
// delay stage, not just the inner network.
func TestFaultyDelayQuiesce(t *testing.T) {
	f := NewFaulty(NewInproc(), FaultConfig{
		Seed: 3, MinDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	rec := &faultRecorder{}
	a, err := f.Listen("a", HandlerFunc(func(Addr, any) {}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("b", rec); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatal(err)
		}
	}
	f.Quiesce()
	if got := len(rec.snapshot()); got != n {
		t.Fatalf("delivered %d/%d after Quiesce", got, n)
	}
	if s := f.Stats(); s.Delayed != n {
		t.Fatalf("Delayed = %d, want %d", s.Delayed, n)
	}
}
