// Package transport abstracts message passing between peers so the same
// protocol code drives both the in-process simulator (goroutine mailboxes,
// the substrate for reproducing the paper's experiments) and real TCP
// deployments.
//
// The contract is asynchronous, at-most-once, FIFO-per-receiver delivery of
// arbitrary (registered) message values. Handlers run one message at a time
// per endpoint, so protocol state needs no locking as long as it is touched
// only from the handler goroutine; use Endpoint.Send to the endpoint's own
// address to inject work into that goroutine from outside.
package transport

import (
	"encoding/gob"
	"errors"
)

// Addr is an opaque peer address: a symbolic name in the in-process network,
// "host:port" over TCP.
type Addr string

// Handler consumes messages delivered to an endpoint. Deliver is called
// sequentially (never concurrently) for a given endpoint.
type Handler interface {
	Deliver(from Addr, msg any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg any)

// Deliver calls f.
func (f HandlerFunc) Deliver(from Addr, msg any) { f(from, msg) }

// Endpoint is a peer's attachment to a network.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send enqueues msg for delivery to the peer at to. Sending to the
	// endpoint's own address delivers locally. Send never blocks on the
	// receiver's processing.
	Send(to Addr, msg any) error
	// Close detaches the endpoint; subsequent sends to it fail with
	// ErrUnreachable.
	Close() error
}

// ErrUnreachable reports that the destination is not attached to the
// network (dead, closed, or never existed).
var ErrUnreachable = errors.New("transport: destination unreachable")

// ErrClosed reports that the sending endpoint itself has been closed.
var ErrClosed = errors.New("transport: endpoint closed")

// Register makes a message type encodable by wire transports (gob). The
// in-process transport passes values directly and does not need it, but
// protocol packages should register all their message types at init so the
// same code runs over TCP.
func Register(v any) { gob.Register(v) }
