package transport

import "time"

// Timer is a cancellable scheduled callback, the subset of *time.Timer the
// protocol layers need. Stop and Reset report whether the timer was still
// pending, with the same semantics as the time package.
type Timer interface {
	Stop() bool
	Reset(d time.Duration) bool
}

// Clock schedules callbacks after a delay. Protocol code (chord RPC
// timeouts and retry backoff, squid subtree recovery and query deadlines)
// takes its timers from a Clock instead of the time package, so the same
// code runs against the runtime timers in production and against the
// discrete-event simulator's virtual clock in planet-scale experiments.
//
// AfterFunc runs fn after d elapses on the clock's timeline. Which
// goroutine fn runs on is implementation-defined (the runtime's timer
// goroutine for RealClock, the event loop for the simulator), so fn must
// hand off to the owning goroutine itself — in this codebase always via
// Node.Invoke, which is safe from anywhere.
type Clock interface {
	AfterFunc(d time.Duration, fn func()) Timer
}

// RealClock is the wall-clock Clock backed by the runtime's timers. The
// zero value is ready to use; it is the default everywhere a Clock is
// injectable.
type RealClock struct{}

// AfterFunc implements Clock via time.AfterFunc.
func (RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return realTimer{time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

var _ Clock = RealClock{}
