package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP endpoint I/O bounds. A peer that hangs mid-handshake or stops
// draining its socket must cost a bounded amount of time, not wedge the
// sender: dials and writes that exceed these fail with ErrUnreachable and
// the connection is re-dialed on the next send. Overridable for tests.
var (
	// TCPDialTimeout bounds connection establishment to a peer.
	TCPDialTimeout = 5 * time.Second
	// TCPWriteTimeout bounds each message write on an established
	// connection (0 disables the deadline).
	TCPWriteTimeout = 10 * time.Second
)

// wireEnvelope is the gob frame exchanged between TCP endpoints. Payload
// types must be registered with Register.
type wireEnvelope struct {
	From    string
	Payload any
}

// TCPEndpoint attaches a protocol handler to a real TCP listener. Each
// inbound connection is decoded by its own goroutine, but deliveries are
// serialized through an internal mailbox so the Handler contract (one
// message at a time) holds, matching the in-process transport.
//
// Outbound connections are cached per destination and re-dialed on failure.
type TCPEndpoint struct {
	addr    Addr
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	conns  map[Addr]*outConn
	closed bool

	deliver chan envelope
	done    chan struct{}

	met atomic.Pointer[tcpMetrics]
}

type outConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// ListenTCP binds to bind (e.g. "127.0.0.1:0") and serves the handler.
// The endpoint's Addr is the listener's concrete address.
func ListenTCP(bind string, h Handler) (*TCPEndpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	ep := &TCPEndpoint{
		addr:    Addr(ln.Addr().String()),
		handler: h,
		ln:      ln,
		conns:   make(map[Addr]*outConn),
		deliver: make(chan envelope, 1024),
		done:    make(chan struct{}),
	}
	go ep.acceptLoop()
	go ep.deliverLoop()
	return ep, nil
}

// Addr returns the bound address ("host:port").
func (ep *TCPEndpoint) Addr() Addr { return ep.addr }

// Send encodes msg to the peer at to, dialing or reusing a cached
// connection. Self-sends bypass the network.
func (ep *TCPEndpoint) Send(to Addr, msg any) error {
	m := ep.met.Load()
	if m == nil {
		return ep.send(to, msg)
	}
	start := m.reg.Now()
	err := ep.send(to, msg)
	m.latency.Observe(int64(m.reg.Since(start)))
	if err != nil {
		m.errors.Inc()
	} else {
		m.sent.Inc()
	}
	return err
}

func (ep *TCPEndpoint) send(to Addr, msg any) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.mu.Unlock()

	if to == ep.addr {
		select {
		case ep.deliver <- envelope{from: ep.addr, msg: msg}:
			return nil
		case <-ep.done:
			return ErrClosed
		}
	}

	oc, err := ep.connTo(to)
	if err != nil {
		return err
	}
	if err := oc.encode(ep.addr, msg); err != nil {
		// Drop the stale connection and retry once on a fresh dial.
		ep.dropConn(to, oc)
		oc, derr := ep.connTo(to)
		if derr != nil {
			return derr
		}
		if err := oc.encode(ep.addr, msg); err != nil {
			ep.dropConn(to, oc)
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
	}
	return nil
}

// encode writes one framed message under the configured write deadline, so
// a peer that stops reading cannot block the sender indefinitely.
func (oc *outConn) encode(from Addr, msg any) error {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if TCPWriteTimeout > 0 {
		if err := oc.conn.SetWriteDeadline(time.Now().Add(TCPWriteTimeout)); err != nil {
			return err
		}
	}
	return oc.enc.Encode(wireEnvelope{From: string(from), Payload: msg})
}

func (ep *TCPEndpoint) connTo(to Addr) (*outConn, error) {
	ep.mu.Lock()
	if oc, ok := ep.conns[to]; ok {
		ep.mu.Unlock()
		return oc, nil
	}
	ep.mu.Unlock()

	conn, err := net.DialTimeout("tcp", string(to), TCPDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, to, err)
	}
	var w io.Writer = conn
	if m := ep.met.Load(); m != nil {
		w = &countingWriter{w: conn, c: m.bytes}
	}
	oc := &outConn{conn: conn, enc: gob.NewEncoder(w)}

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := ep.conns[to]; ok {
		conn.Close()
		return existing, nil
	}
	ep.conns[to] = oc
	return oc, nil
}

func (ep *TCPEndpoint) dropConn(to Addr, oc *outConn) {
	ep.mu.Lock()
	if ep.conns[to] == oc {
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	oc.conn.Close()
}

// Close shuts the listener, cached connections and the delivery loop.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	conns := ep.conns
	ep.conns = map[Addr]*outConn{}
	ep.mu.Unlock()

	close(ep.done)
	err := ep.ln.Close()
	for _, oc := range conns {
		oc.conn.Close()
	}
	return err
}

func (ep *TCPEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env wireEnvelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if m := ep.met.Load(); m != nil {
			m.received.Inc()
		}
		select {
		case ep.deliver <- envelope{from: Addr(env.From), msg: env.Payload}:
		case <-ep.done:
			return
		}
	}
}

func (ep *TCPEndpoint) deliverLoop() {
	for {
		select {
		case env := <-ep.deliver:
			ep.handler.Deliver(env.from, env.msg)
		case <-ep.done:
			return
		}
	}
}

var _ Endpoint = (*TCPEndpoint)(nil)
