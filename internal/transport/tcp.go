package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"squid/internal/wire"
)

// TCP endpoint I/O bounds. A peer that hangs mid-handshake or stops
// draining its socket must cost a bounded amount of time, not wedge the
// sender: dials and writes that exceed these fail with ErrUnreachable and
// the connection is re-dialed on the next send. Overridable for tests.
var (
	// TCPDialTimeout bounds connection establishment to a peer.
	TCPDialTimeout = 5 * time.Second
	// TCPNegotiateTimeout bounds the codec-negotiation round trip on a
	// fresh connection. A peer that closes the connection instead of
	// acking is a pre-binary build (gob fallback); a peer that answers
	// nothing at all within this window is wedged and the dial fails.
	TCPNegotiateTimeout = 1 * time.Second
	// TCPWriteTimeout bounds each message write on an established
	// connection (0 disables the deadline).
	TCPWriteTimeout = 10 * time.Second
	// MaxInboundFrame bounds one inbound message's wire size on both the
	// binary and gob paths. A corrupt or hostile length must fail fast
	// (counted by squid_transport_frame_rejected_total) instead of making
	// the read loop allocate unboundedly.
	MaxInboundFrame = 32 << 20
)

// Binary-protocol preamble. A gob stream can never begin with a zero
// byte (gob frames a non-zero byte count first), so the first inbound
// byte cleanly discriminates the codecs: new dialers lead with
// {0, 'S', 'Q', 'W', version}, then the dialer's address, and wait for
// the one-byte ack. A pre-binary peer feeds the preamble to its gob
// decoder, errors out and closes — the dialer reads EOF instead of the
// ack, re-dials in gob mode and remembers the peer is gob-only. See
// DESIGN.md §4i.
const (
	wireMagic0  = 0x00
	wireVersion = 0x01
	wireAck     = 0x01
)

var wirePreamble = [5]byte{wireMagic0, 'S', 'Q', 'W', wireVersion}

// maxPreambleAddr bounds the dialer-address string accepted during
// negotiation.
const maxPreambleAddr = 512

// frameGob tags a frame whose body is a standalone gob stream — the
// escape hatch for messages without a binary codec (wire.EncodeMessage
// declined). Registered wire tags start at wire.TagNil+1.
const frameGob = 0x00

var errFrameTooLarge = errors.New("transport: inbound frame exceeds MaxInboundFrame")

// WireMode selects an endpoint's codec behaviour — primarily a test
// knob; production endpoints stay on WireAuto.
type WireMode int

const (
	// WireAuto (default) negotiates the binary codec per connection and
	// falls back to gob when the peer declines.
	WireAuto WireMode = iota
	// WireGob always dials in gob mode but still accepts binary inbound —
	// a node whose operator pinned the oracle codec.
	WireGob
	// WireLegacy emulates a pre-wire-codec build: gob outbound and a
	// sniff-free gob inbound loop that rejects binary preambles exactly
	// like an old binary would.
	WireLegacy
)

// TCPEndpoint attaches a protocol handler to a real TCP listener. Each
// inbound connection is decoded by its own goroutine, but deliveries are
// serialized through an internal mailbox so the Handler contract (one
// message at a time) holds, matching the in-process transport.
//
// Outbound connections are cached per destination, dialed at most once
// concurrently (a burst of Sends to a fresh peer shares one dial), and
// re-dialed on failure. Writes are coalesced: frames buffer through a
// per-connection bufio.Writer and the last sender out of the write lock
// flushes, so a concurrent dispatch round or stabilization tick costs one
// syscall per destination instead of one per message.
type TCPEndpoint struct {
	addr    Addr
	handler Handler
	ln      net.Listener

	mu      sync.Mutex
	conns   map[Addr]*outConn  //lint:guarded-by mu
	dialing map[Addr]*dialCall //lint:guarded-by mu
	// gobOnly remembers peers that declined binary negotiation.
	gobOnly map[Addr]bool //lint:guarded-by mu
	mode    WireMode      //lint:guarded-by mu
	closed  bool          //lint:guarded-by mu

	deliver chan envelope
	done    chan struct{}

	met atomic.Pointer[tcpMetrics]
}

// dialCall is one in-flight dial shared by every concurrent Send to the
// same fresh destination (singleflight).
type dialCall struct {
	done chan struct{}
	oc   *outConn
	err  error
}

// outConn is one cached outbound connection. The mutex serializes frame
// encoding into bw; pending counts senders inside or waiting on that
// lock, and the last one out flushes (group commit).
type outConn struct {
	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer //lint:guarded-by mu
	pending atomic.Int32

	binary bool
	// enc carries gob-mode framing (nil on binary connections).
	enc *gob.Encoder //lint:guarded-by mu
	// wenc is the binary-mode frame buffer.
	wenc wire.Encoder //lint:guarded-by mu
	// scratch buffers gob-fallback bodies on binary connections.
	scratch bytes.Buffer //lint:guarded-by mu
}

// ListenTCP binds to bind (e.g. "127.0.0.1:0") and serves the handler.
// The endpoint's Addr is the listener's concrete address.
func ListenTCP(bind string, h Handler) (*TCPEndpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	ep := &TCPEndpoint{
		addr:    Addr(ln.Addr().String()),
		handler: h,
		ln:      ln,
		conns:   make(map[Addr]*outConn),
		dialing: make(map[Addr]*dialCall),
		gobOnly: make(map[Addr]bool),
		deliver: make(chan envelope, 1024),
		done:    make(chan struct{}),
	}
	go ep.acceptLoop()
	go ep.deliverLoop()
	return ep, nil
}

// Addr returns the bound address ("host:port").
func (ep *TCPEndpoint) Addr() Addr { return ep.addr }

// SetWireMode pins the endpoint's codec behaviour. Call before traffic
// starts; established connections keep their negotiated codec.
func (ep *TCPEndpoint) SetWireMode(m WireMode) {
	ep.mu.Lock()
	ep.mode = m
	ep.mu.Unlock()
}

// Send encodes msg to the peer at to, dialing or reusing a cached
// connection. Self-sends bypass the network.
func (ep *TCPEndpoint) Send(to Addr, msg any) error {
	m := ep.met.Load()
	if m == nil {
		return ep.send(to, msg)
	}
	start := m.reg.Now()
	err := ep.send(to, msg)
	m.latency.Observe(int64(m.reg.Since(start)))
	if err != nil {
		m.errors.Inc()
	} else {
		m.sent.Inc()
	}
	return err
}

func (ep *TCPEndpoint) send(to Addr, msg any) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.mu.Unlock()

	if to == ep.addr {
		select {
		case ep.deliver <- envelope{from: ep.addr, msg: msg}:
			return nil
		case <-ep.done:
			return ErrClosed
		}
	}

	oc, err := ep.connTo(to)
	if err != nil {
		return err
	}
	if err := ep.writeMsg(oc, msg); err != nil {
		// Drop the stale connection and retry once on a fresh dial.
		ep.dropConn(to, oc)
		oc, derr := ep.connTo(to)
		if derr != nil {
			return derr
		}
		if err := ep.writeMsg(oc, msg); err != nil {
			ep.dropConn(to, oc)
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
	}
	return nil
}

// writeMsg frames one message into the connection's write buffer under
// the configured deadline and group-flushes: while other senders are
// queued on the same connection their frames share the flush, so a burst
// to one destination is one syscall, not one per message.
func (oc *outConn) sendLocked(write func() error) error {
	if TCPWriteTimeout > 0 {
		if err := oc.conn.SetWriteDeadline(time.Now().Add(TCPWriteTimeout)); err != nil {
			return err
		}
	}
	return write()
}

func (ep *TCPEndpoint) writeMsg(oc *outConn, msg any) error {
	oc.pending.Add(1)
	oc.mu.Lock()
	defer oc.mu.Unlock()
	err := oc.sendLocked(func() error {
		if oc.binary {
			return ep.writeBinaryFrame(oc, msg)
		}
		if m := ep.met.Load(); m != nil {
			m.frames.gob.Inc()
		}
		return oc.enc.Encode(wireEnvelope{From: string(ep.addr), Payload: msg})
	})
	// Group flush: the last sender out writes the coalesced buffer. A
	// sender that sees pending > 0 may skip the flush — the queued sender
	// it observed is blocked on this mutex and will flush (or pass the
	// duty on) right after.
	if oc.pending.Add(-1) > 0 && err == nil {
		return nil
	}
	if oc.bw.Buffered() > 0 {
		ferr := oc.bw.Flush()
		if m := ep.met.Load(); m != nil {
			m.flushes.Inc()
		}
		if err == nil {
			err = ferr
		}
	}
	return err
}

// writeBinaryFrame appends one length-prefixed frame: wire tag + body for
// codec-registered messages, or the frameGob escape (tag 0 + standalone
// gob stream) for the long tail. The frame is fully staged in memory
// before any byte reaches the write buffer, so encode errors never leave
// a torn frame on the stream. The staged path allocates nothing: the
// encoder's buffer and the header array are reused frame over frame.
//
//lint:holds oc.mu
func (ep *TCPEndpoint) writeBinaryFrame(oc *outConn, msg any) error {
	m := ep.met.Load()
	oc.wenc.Reset()
	if wire.EncodeMessage(&oc.wenc, msg) {
		if m != nil {
			m.frames.binary.Inc()
		}
		return writeFrame(oc.bw, oc.wenc.Bytes())
	}
	// Fallback: no codec (or an unregistered nested payload) — ship a
	// tagged standalone gob body so old and new message types coexist on
	// one connection.
	oc.scratch.Reset()
	oc.scratch.WriteByte(frameGob)
	if err := gob.NewEncoder(&oc.scratch).Encode(wireEnvelope{From: string(ep.addr), Payload: msg}); err != nil {
		return err
	}
	if m != nil {
		m.frames.gobFallback.Inc()
	}
	return writeFrame(oc.bw, oc.scratch.Bytes())
}

// writeFrame writes the 4-byte big-endian length header and the body.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > MaxInboundFrame {
		return fmt.Errorf("transport: outbound frame %d bytes exceeds MaxInboundFrame %d", len(body), MaxInboundFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// connTo returns the cached connection to to, joining an in-flight dial
// or starting one. Concurrent Sends to a fresh peer used to each dial
// and throw away all but one connection; now exactly one dial runs and
// the waiters share its result.
func (ep *TCPEndpoint) connTo(to Addr) (*outConn, error) {
	for {
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return nil, ErrClosed
		}
		if oc, ok := ep.conns[to]; ok {
			ep.mu.Unlock()
			return oc, nil
		}
		if call, ok := ep.dialing[to]; ok {
			ep.mu.Unlock()
			if m := ep.met.Load(); m != nil {
				m.dialsCoalesced.Inc()
			}
			<-call.done
			if call.err != nil {
				return nil, call.err
			}
			// The dial succeeded but the connection may have been dropped
			// already; loop to re-check the cache.
			ep.mu.Lock()
			oc, ok := ep.conns[to]
			ep.mu.Unlock()
			if ok {
				return oc, nil
			}
			continue
		}
		call := &dialCall{done: make(chan struct{})}
		ep.dialing[to] = call
		mode := ep.mode
		ep.mu.Unlock()

		call.oc, call.err = ep.dial(to, mode)

		ep.mu.Lock()
		delete(ep.dialing, to)
		if call.err == nil {
			if ep.closed {
				_ = call.oc.conn.Close() // a racing Close() won; the dial result is discarded anyway
				call.err = ErrClosed
			} else {
				ep.conns[to] = call.oc
			}
		}
		ep.mu.Unlock()
		close(call.done)
		return call.oc, call.err
	}
}

// dial establishes and (in WireAuto mode) negotiates one outbound
// connection.
func (ep *TCPEndpoint) dial(to Addr, mode WireMode) (*outConn, error) {
	m := ep.met.Load()
	if m != nil {
		m.dials.Inc()
	}
	tryBinary := mode == WireAuto && !ep.peerGobOnly(to)
	conn, err := net.DialTimeout("tcp", string(to), TCPDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, to, err)
	}
	if tryBinary {
		ok, nerr := ep.negotiate(conn)
		if ok {
			return ep.newOutConn(conn, true), nil
		}
		_ = conn.Close() // the dial is already failing; the close error adds nothing
		if nerr != nil {
			// The peer answered nothing inside the negotiation window: it
			// is wedged, not old — failing is truthful, falling back to a
			// gob stream it also is not reading would only hide it.
			return nil, fmt.Errorf("%w: negotiate %s: %v", ErrUnreachable, to, nerr)
		}
		// Peer declined (pre-binary build closed the connection on the
		// preamble): remember and re-dial gob.
		ep.mu.Lock()
		ep.gobOnly[to] = true
		ep.mu.Unlock()
		if m != nil {
			m.negotiationFallbacks.Inc()
		}
		conn, err = net.DialTimeout("tcp", string(to), TCPDialTimeout)
		if err != nil {
			return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, to, err)
		}
	}
	return ep.newOutConn(conn, false), nil
}

// negotiate runs the dialer side of the codec handshake: preamble +
// self-address out, one ack byte back, all under TCPNegotiateTimeout.
// ok means the peer acked binary. A false return with nil error is a
// decline (gob fallback); a non-nil error is a dead/wedged peer.
func (ep *TCPEndpoint) negotiate(conn net.Conn) (bool, error) {
	deadline := time.Now().Add(TCPNegotiateTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return false, nil
	}
	var e wire.Encoder
	e.Reset()
	e.String(string(ep.addr))
	if _, err := conn.Write(wirePreamble[:]); err != nil {
		return false, timeoutOrDecline(err)
	}
	if _, err := conn.Write(e.Bytes()); err != nil {
		return false, timeoutOrDecline(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != wireAck {
		if err != nil {
			return false, timeoutOrDecline(err)
		}
		return false, nil
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return false, nil
	}
	return true, nil
}

// timeoutOrDecline maps a negotiation I/O error: timeouts surface (the
// peer is unresponsive), everything else — EOF, reset — reads as an old
// peer rejecting the preamble and returns nil for the gob fallback.
func timeoutOrDecline(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return err
	}
	return nil
}

func (ep *TCPEndpoint) newOutConn(conn net.Conn, binaryMode bool) *outConn {
	var w io.Writer = conn
	if m := ep.met.Load(); m != nil {
		w = &countingWriter{w: conn, c: m.bytes}
	}
	oc := &outConn{conn: conn, bw: bufio.NewWriter(w), binary: binaryMode}
	if !binaryMode {
		//lint:allow-lockcheck the outConn is still private to this constructor
		oc.enc = gob.NewEncoder(oc.bw)
	}
	return oc
}

func (ep *TCPEndpoint) peerGobOnly(to Addr) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.gobOnly[to]
}

func (ep *TCPEndpoint) dropConn(to Addr, oc *outConn) {
	ep.mu.Lock()
	if ep.conns[to] == oc {
		delete(ep.conns, to)
	}
	ep.mu.Unlock()
	_ = oc.conn.Close() // the conn is already broken; its close error is uninformative
}

// Close shuts the listener, cached connections and the delivery loop.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	conns := ep.conns
	ep.conns = map[Addr]*outConn{}
	ep.mu.Unlock()

	close(ep.done)
	err := ep.ln.Close()
	for _, oc := range conns {
		_ = oc.conn.Close() // shutdown path: the listener close error is the one reported
	}
	return err
}

func (ep *TCPEndpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		go ep.readLoop(conn)
	}
}

// rejectFrame counts one inbound-frame rejection.
func (ep *TCPEndpoint) rejectFrame() {
	if m := ep.met.Load(); m != nil {
		m.frameRejected.Inc()
	}
}

// readLoop serves one inbound connection. The first byte discriminates
// the codec: a zero byte can only be a binary preamble (gob always leads
// with a non-zero count), anything else is a gob stream. WireLegacy
// endpoints skip the sniff and behave exactly like a pre-binary build.
func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer func() {
		_ = conn.Close() // inbound loop exit: the decode error, if any, was already counted
	}()
	br := bufio.NewReader(conn)

	ep.mu.Lock()
	legacy := ep.mode == WireLegacy
	ep.mu.Unlock()

	if !legacy {
		first, err := br.Peek(1)
		if err != nil {
			return
		}
		if first[0] == wireMagic0 {
			ep.readBinary(conn, br)
			return
		}
	}
	ep.readGob(conn, br)
}

// readBinary validates the preamble, acks, then decodes length-prefixed
// frames. Any oversized, truncated or undecodable frame is counted and
// kills the connection — a corrupt stream has no recoverable framing.
func (ep *TCPEndpoint) readBinary(conn net.Conn, br *bufio.Reader) {
	var pre [5]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != wirePreamble {
		ep.rejectFrame()
		return
	}
	// Dialer address, bounded: sent once per connection instead of per
	// frame (one of the binary format's per-message savings over gob).
	var lenBuf [binary.MaxVarintLen64]byte
	n := 0
	for {
		b, err := br.ReadByte()
		if err != nil || n == len(lenBuf) {
			ep.rejectFrame()
			return
		}
		lenBuf[n] = b
		n++
		if b < 0x80 {
			break
		}
	}
	addrLen, k := binary.Uvarint(lenBuf[:n])
	if k <= 0 || addrLen > maxPreambleAddr {
		ep.rejectFrame()
		return
	}
	addrBytes := make([]byte, addrLen)
	if _, err := io.ReadFull(br, addrBytes); err != nil {
		ep.rejectFrame()
		return
	}
	from := Addr(addrBytes)
	if _, err := conn.Write([]byte{wireAck}); err != nil {
		return
	}

	var body []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n == 0 || n > MaxInboundFrame {
			ep.rejectFrame()
			return
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		var msg any
		if body[0] == frameGob {
			var env wireEnvelope
			if err := gob.NewDecoder(bytes.NewReader(body[1:])).Decode(&env); err != nil {
				ep.rejectFrame()
				return
			}
			msg = env.Payload
		} else {
			v, err := wire.DecodeMessage(body)
			if err != nil {
				ep.rejectFrame()
				return
			}
			msg = v
		}
		if m := ep.met.Load(); m != nil {
			m.received.Inc()
		}
		select {
		case ep.deliver <- envelope{from: from, msg: msg}:
		case <-ep.done:
			return
		}
	}
}

// readGob decodes the legacy stream format. The reader is wrapped in a
// per-message byte limit so a corrupt or hostile gob length costs at most
// MaxInboundFrame before the connection dies, mirroring the binary path.
func (ep *TCPEndpoint) readGob(conn net.Conn, br *bufio.Reader) {
	lr := &frameLimitReader{r: br}
	dec := gob.NewDecoder(lr)
	for {
		lr.n = 0
		var env wireEnvelope
		if err := dec.Decode(&env); err != nil {
			if lr.tripped {
				ep.rejectFrame()
			}
			return
		}
		if m := ep.met.Load(); m != nil {
			m.received.Inc()
		}
		select {
		case ep.deliver <- envelope{from: Addr(env.From), msg: env.Payload}:
		case <-ep.done:
			return
		}
	}
}

// frameLimitReader caps the bytes one gob message may pull. The read
// loop resets n before each Decode; tripping the cap poisons the reader
// so the decoder's next read fails too.
type frameLimitReader struct {
	r       io.Reader
	n       int
	tripped bool
}

func (l *frameLimitReader) Read(p []byte) (int, error) {
	if l.tripped || l.n >= MaxInboundFrame {
		l.tripped = true
		return 0, errFrameTooLarge
	}
	if rem := MaxInboundFrame - l.n; len(p) > rem {
		p = p[:rem]
	}
	n, err := l.r.Read(p)
	l.n += n
	return n, err
}

func (ep *TCPEndpoint) deliverLoop() {
	for {
		select {
		case env := <-ep.deliver:
			ep.handler.Deliver(env.from, env.msg)
		case <-ep.done:
			return
		}
	}
}

// wireEnvelope is the gob frame exchanged between TCP endpoints (the
// legacy stream format and the binary path's gob-fallback body). Payload
// types must be registered with Register.
type wireEnvelope struct {
	From    string
	Payload any
}

var _ Endpoint = (*TCPEndpoint)(nil)
