package transport

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig tunes a Faulty network. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every fault decision. The schedule is deterministic per
	// directed link: each (from, to) pair owns a random sequence derived
	// from Seed, consumed one draw per message, so the same seed and the
	// same per-link message order reproduce the same drops and delays
	// regardless of how sends interleave across links.
	Seed int64
	// DropRate is the default probability in [0, 1) that a message is
	// silently lost (the sender sees success). Per-link overrides win.
	DropRate float64
	// MinDelay/MaxDelay bound a uniform per-message delivery latency.
	// MaxDelay <= 0 delivers immediately.
	MinDelay, MaxDelay time.Duration
}

// FaultStats counts injected faults, for experiment accounting.
type FaultStats struct {
	Delivered      uint64 // messages passed through to the inner network
	Dropped        uint64 // lost to the drop-rate lottery
	Delayed        uint64 // delivered after an injected latency
	PartitionDrops uint64 // lost to a network partition
	CrashDrops     uint64 // lost to a crashed endpoint
}

// Faulty wraps an in-process network with deterministic, seeded fault
// injection: per-link message drops, latency, partitions, and endpoint
// crash/restart. It is the chaos substrate for the recovery tests — the
// same protocol code runs unchanged, only the network misbehaves.
//
// Self-sends (an endpoint sending to its own address) are exempt from all
// faults: both transports use them to inject work into the endpoint's
// delivery goroutine, and faulting them would wedge the node itself rather
// than the network.
type Faulty struct {
	inner *Inproc
	seed  int64

	mu       sync.Mutex
	dropRate float64
	minDelay time.Duration
	maxDelay time.Duration
	linkRate map[linkKey]float64
	links    map[linkKey]*rand.Rand
	group    map[Addr]int // partition group; addresses absent are group 0
	split    bool         // a partition is active
	crashed  map[Addr]bool
	met      *faultyMetrics

	dmu     sync.Mutex
	dcond   *sync.Cond
	pending int // delayed messages not yet handed to the inner network

	delivered      atomic.Uint64
	dropped        atomic.Uint64
	delayed        atomic.Uint64
	partitionDrops atomic.Uint64
	crashDrops     atomic.Uint64
}

type linkKey struct{ from, to Addr }

// NewFaulty wraps inner with fault injection.
func NewFaulty(inner *Inproc, cfg FaultConfig) *Faulty {
	f := &Faulty{
		inner:    inner,
		seed:     cfg.Seed,
		dropRate: cfg.DropRate,
		minDelay: cfg.MinDelay,
		maxDelay: cfg.MaxDelay,
		linkRate: make(map[linkKey]float64),
		links:    make(map[linkKey]*rand.Rand),
		group:    make(map[Addr]int),
		crashed:  make(map[Addr]bool),
	}
	f.dcond = sync.NewCond(&f.dmu)
	return f
}

// Inner returns the wrapped in-process network.
func (f *Faulty) Inner() *Inproc { return f.inner }

// Listen attaches a handler to the inner network and returns an endpoint
// whose sends pass through the fault layer.
func (f *Faulty) Listen(name Addr, h Handler) (Endpoint, error) {
	ep, err := f.inner.Listen(name, h)
	if err != nil {
		return nil, err
	}
	return &faultyEndpoint{net: f, inner: ep}, nil
}

// Kill permanently detaches the named endpoint from the inner network
// (sends to it fail with ErrUnreachable) and clears any crash mark.
func (f *Faulty) Kill(name Addr) {
	f.inner.Kill(name)
	f.mu.Lock()
	delete(f.crashed, name)
	f.mu.Unlock()
}

// SetDropRate changes the default drop probability. 0 heals drop faults.
func (f *Faulty) SetDropRate(p float64) {
	f.mu.Lock()
	f.dropRate = p
	f.mu.Unlock()
}

// SetLinkDrop overrides the drop probability of one directed link.
func (f *Faulty) SetLinkDrop(from, to Addr, p float64) {
	f.mu.Lock()
	f.linkRate[linkKey{from, to}] = p
	f.mu.Unlock()
}

// ClearLinkDrops removes all per-link drop overrides.
func (f *Faulty) ClearLinkDrops() {
	f.mu.Lock()
	f.linkRate = make(map[linkKey]float64)
	f.mu.Unlock()
}

// SetDelay changes the injected latency range. max <= 0 disables delays.
func (f *Faulty) SetDelay(min, max time.Duration) {
	f.mu.Lock()
	f.minDelay, f.maxDelay = min, max
	f.mu.Unlock()
}

// Partition splits the network: each listed group can only talk within
// itself, and unlisted addresses form one implicit group of their own.
// Messages crossing group boundaries are silently lost.
func (f *Faulty) Partition(groups ...[]Addr) {
	f.mu.Lock()
	f.group = make(map[Addr]int)
	for i, g := range groups {
		for _, a := range g {
			f.group[a] = i + 1
		}
	}
	f.split = true
	f.mu.Unlock()
}

// Heal removes any partition.
func (f *Faulty) Heal() {
	f.mu.Lock()
	f.group = make(map[Addr]int)
	f.split = false
	f.mu.Unlock()
}

// Crash black-holes an endpoint without detaching it: messages to and from
// it are silently lost, modelling a frozen or fully partitioned process.
// The endpoint's state survives; Restart reconnects it.
func (f *Faulty) Crash(name Addr) {
	f.mu.Lock()
	f.crashed[name] = true
	f.mu.Unlock()
}

// Crashed reports whether the named endpoint is currently black-holed.
func (f *Faulty) Crashed(name Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed[name]
}

// Restart reconnects a crashed endpoint.
func (f *Faulty) Restart(name Addr) {
	f.mu.Lock()
	delete(f.crashed, name)
	f.mu.Unlock()
}

// Stats snapshots the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	return FaultStats{
		Delivered:      f.delivered.Load(),
		Dropped:        f.dropped.Load(),
		Delayed:        f.delayed.Load(),
		PartitionDrops: f.partitionDrops.Load(),
		CrashDrops:     f.crashDrops.Load(),
	}
}

// Quiesce blocks until no message is in flight anywhere: neither delayed in
// the fault layer nor queued or being handled in the inner network.
func (f *Faulty) Quiesce() {
	for {
		f.dmu.Lock()
		for f.pending > 0 {
			f.dcond.Wait()
		}
		f.dmu.Unlock()
		f.inner.Quiesce()
		f.dmu.Lock()
		idle := f.pending == 0
		f.dmu.Unlock()
		if idle {
			return
		}
	}
}

// linkRNG returns the deterministic random sequence of one directed link.
// Callers hold f.mu.
func (f *Faulty) linkRNG(k linkKey) *rand.Rand {
	if r, ok := f.links[k]; ok {
		return r
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(k.from)) // hash.Hash.Write never fails
	_, _ = h.Write([]byte{0})      // hash.Hash.Write never fails
	_, _ = h.Write([]byte(k.to))   // hash.Hash.Write never fails
	r := rand.New(rand.NewSource(f.seed ^ int64(h.Sum64())))
	f.links[k] = r
	return r
}

// send applies the fault plan to one message, then forwards survivors to
// the inner endpoint (possibly after a delay).
func (f *Faulty) send(ep Endpoint, to Addr, msg any) error {
	from := ep.Addr()
	if from == to {
		return ep.Send(to, msg) // self-delivery: exempt from faults
	}

	f.mu.Lock()
	met := f.met
	if f.crashed[from] || f.crashed[to] {
		f.mu.Unlock()
		f.crashDrops.Add(1)
		if met != nil {
			met.crash.Inc()
		}
		return nil
	}
	if f.split && f.group[from] != f.group[to] {
		f.mu.Unlock()
		f.partitionDrops.Add(1)
		if met != nil {
			met.partition.Inc()
		}
		return nil
	}
	k := linkKey{from, to}
	rate, ok := f.linkRate[k]
	if !ok {
		rate = f.dropRate
	}
	rng := f.linkRNG(k)
	// Always consume both draws so the link's schedule does not shift when
	// delay settings change mid-run.
	dropDraw := rng.Float64()
	delayDraw := rng.Float64()
	minD, maxD := f.minDelay, f.maxDelay
	f.mu.Unlock()

	if rate > 0 && dropDraw < rate {
		f.dropped.Add(1)
		if met != nil {
			met.dropped.Inc()
		}
		return nil
	}
	if maxD > 0 {
		d := minD + time.Duration(delayDraw*float64(maxD-minD))
		f.delayed.Add(1)
		if met != nil {
			met.delayed.Inc()
		}
		f.dmu.Lock()
		f.pending++
		f.dmu.Unlock()
		//lint:allow-nondet delay injection is wall-clock by design: every drop/delay decision is a seeded draw above, only the delivery timing rides the real clock
		time.AfterFunc(d, func() {
			f.delivered.Add(1)
			if met != nil {
				met.delivered.Inc()
			}
			_ = ep.Send(to, msg) // destination may have died meanwhile
			f.dmu.Lock()
			f.pending--
			if f.pending == 0 {
				f.dcond.Broadcast()
			}
			f.dmu.Unlock()
		})
		return nil
	}
	f.delivered.Add(1)
	if met != nil {
		met.delivered.Inc()
	}
	return ep.Send(to, msg)
}

// faultyEndpoint routes sends through the fault layer.
type faultyEndpoint struct {
	net   *Faulty
	inner Endpoint
}

func (e *faultyEndpoint) Addr() Addr { return e.inner.Addr() }

func (e *faultyEndpoint) Send(to Addr, msg any) error {
	return e.net.send(e.inner, to, msg)
}

func (e *faultyEndpoint) Close() error {
	err := e.inner.Close()
	e.net.mu.Lock()
	delete(e.net.crashed, e.inner.Addr())
	e.net.mu.Unlock()
	return err
}

var _ Endpoint = (*faultyEndpoint)(nil)
