package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Observer inspects every message accepted for delivery on an in-process
// network. Observers run synchronously in the sender's goroutine and must be
// fast and safe for concurrent use. The simulator uses one to count
// per-query messages exactly as the paper's simulator does.
type Observer func(from, to Addr, msg any)

// Inproc is an in-memory network connecting endpoints by symbolic name.
// Each endpoint owns one goroutine that delivers its mailbox sequentially.
// Inproc tracks in-flight work so callers can wait for the network to
// quiesce — the simulation primitive behind every experiment in this
// repository.
type Inproc struct {
	mu       sync.Mutex
	boxes    map[Addr]*mailbox
	observer Observer
	met      *inprocMetrics

	// In-flight accounting is a cond-guarded counter rather than a
	// WaitGroup: recovery timers may inject messages concurrently with
	// Quiesce, and WaitGroup forbids Add-from-zero racing Wait.
	imu      sync.Mutex
	icond    *sync.Cond
	inflight int

	// activity counts every successfully enqueued message, monotonically.
	// The simulator's quiesce loop compares samples taken around a
	// transport-and-scheduler sweep: an unchanged counter proves nothing —
	// not even a self-send — happened during the sweep.
	activity atomic.Uint64
}

// NewInproc returns an empty in-process network.
func NewInproc() *Inproc {
	n := &Inproc{boxes: make(map[Addr]*mailbox)}
	n.icond = sync.NewCond(&n.imu)
	return n
}

// SetObserver installs the message observer. Pass nil to remove. Must not
// be called concurrently with message sends.
func (n *Inproc) SetObserver(o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observer = o
}

// Listen attaches a handler under the given name and returns its endpoint.
// The name must be unused.
func (n *Inproc) Listen(name Addr, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", name)
	}
	box := &mailbox{net: n, addr: name, handler: h}
	box.cond = sync.NewCond(&box.mu)

	n.mu.Lock()
	if _, dup := n.boxes[name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: address %q already in use", name)
	}
	n.boxes[name] = box
	n.mu.Unlock()

	go box.run()
	return box, nil
}

// Kill abruptly detaches the named endpoint, modelling a node failure:
// queued messages are dropped and future sends fail with ErrUnreachable.
func (n *Inproc) Kill(name Addr) {
	n.mu.Lock()
	box := n.boxes[name]
	delete(n.boxes, name)
	n.mu.Unlock()
	if box != nil {
		box.close()
	}
}

// Quiesce blocks until no message is queued or being handled anywhere in
// the network. It is only meaningful while no external goroutine keeps
// injecting messages.
func (n *Inproc) Quiesce() {
	n.imu.Lock()
	for n.inflight > 0 {
		n.icond.Wait()
	}
	n.imu.Unlock()
}

// Activity returns the monotonic count of messages accepted for delivery
// since the network was created. Safe from any goroutine.
func (n *Inproc) Activity() uint64 {
	return n.activity.Load()
}

func (n *Inproc) track() {
	n.imu.Lock()
	n.inflight++
	n.imu.Unlock()
}

func (n *Inproc) done() {
	n.imu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.icond.Broadcast()
	}
	n.imu.Unlock()
}

func (n *Inproc) send(from, to Addr, msg any) error {
	n.mu.Lock()
	box := n.boxes[to]
	obs := n.observer
	met := n.met
	n.mu.Unlock()
	if box == nil {
		if met != nil {
			met.unreachable.Inc()
		}
		return ErrUnreachable
	}
	n.track()
	if !box.enqueue(from, msg) {
		n.done()
		if met != nil {
			met.unreachable.Inc()
		}
		return ErrUnreachable
	}
	n.activity.Add(1)
	if met != nil {
		met.sent.Inc()
	}
	if obs != nil {
		obs(from, to, msg)
	}
	return nil
}

type envelope struct {
	from Addr
	msg  any
}

// mailbox is an unbounded FIFO queue drained by one goroutine. Unbounded
// queues keep the network deadlock-free: handlers may fan out arbitrarily
// many sends without ever blocking on a peer's backlog (the simulator's
// workloads are finite, so memory is bounded by the experiment).
type mailbox struct {
	net     *Inproc
	addr    Addr
	handler Handler

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
}

func (b *mailbox) Addr() Addr { return b.addr }

func (b *mailbox) Send(to Addr, msg any) error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return b.net.send(b.addr, to, msg)
}

func (b *mailbox) Close() error {
	b.net.Kill(b.addr)
	return nil
}

func (b *mailbox) enqueue(from Addr, msg any) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.queue = append(b.queue, envelope{from, msg})
	b.cond.Signal()
	return true
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	dropped := len(b.queue)
	b.queue = nil
	b.cond.Signal()
	b.mu.Unlock()
	for i := 0; i < dropped; i++ {
		b.net.done()
	}
}

func (b *mailbox) run() {
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if b.closed {
			b.mu.Unlock()
			return
		}
		env := b.queue[0]
		b.queue = b.queue[1:]
		b.mu.Unlock()

		b.handler.Deliver(env.from, env.msg)
		b.net.done()
	}
}
