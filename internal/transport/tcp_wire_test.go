package transport

import (
	"encoding/binary"
	"encoding/gob"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"squid/internal/telemetry"
	"squid/internal/wire"
)

// wireTestMsg has a binary codec; wireGobMsg only has gob. Both travel
// through the same endpoints so the tests below can steer a frame down
// either path. Tags sit far above the protocol ranges.
type wireTestMsg struct {
	N uint64
	S string
}

type wireGobMsg struct{ S string }

func init() {
	gob.Register(wireTestMsg{})
	gob.Register(wireGobMsg{})
	wire.Register(20_001, wireTestMsg{},
		func(e *wire.Encoder, v any) {
			m := v.(wireTestMsg)
			e.Uvarint(m.N)
			e.String(m.S)
		},
		func(d *wire.Decoder) any {
			var m wireTestMsg
			m.N = d.Uvarint()
			m.S = d.String()
			return m
		})
}

// wirePair builds two instrumented endpooints and returns them plus their
// metrics for counter assertions.
func wirePair(t *testing.T) (a, b *TCPEndpoint, ra, rb *recorder, ma, mb *tcpMetrics) {
	t.Helper()
	ra, rb = &recorder{}, &recorder{}
	a, err := ListenTCP("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err = ListenTCP("127.0.0.1:0", rb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a.Instrument(telemetry.NewRegistry(time.Now))
	b.Instrument(telemetry.NewRegistry(time.Now))
	return a, b, ra, rb, a.met.Load(), b.met.Load()
}

func waitMsgs(t *testing.T, r *recorder, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got := r.snapshot(); len(got) >= n {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages; have %v", n, r.snapshot())
	return nil
}

func waitCounter(t *testing.T, c *telemetry.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want >= %d", c.Value(), want)
}

// TestTCPBinaryNegotiation: two current builds negotiate the binary codec
// and codec-registered messages travel as binary frames — zero gob frames
// on the connection.
func TestTCPBinaryNegotiation(t *testing.T) {
	a, b, _, rb, ma, _ := wirePair(t)
	for i := 0; i < 3; i++ {
		if err := a.Send(b.Addr(), wireTestMsg{N: uint64(i), S: "bin"}); err != nil {
			t.Fatal(err)
		}
	}
	got := waitMsgs(t, rb, 3)
	if want := string(a.Addr()) + ":{0 bin}"; got[0] != want {
		t.Errorf("first delivery = %q, want %q", got[0], want)
	}
	if n := ma.frames.binary.Value(); n != 3 {
		t.Errorf("binary frames = %d, want 3", n)
	}
	if n := ma.frames.gob.Value(); n != 0 {
		t.Errorf("gob frames = %d, want 0", n)
	}
	if n := ma.negotiationFallbacks.Value(); n != 0 {
		t.Errorf("negotiation fallbacks = %d, want 0", n)
	}
}

// TestTCPGobFallbackFrame: a message type without a binary codec still
// crosses a negotiated binary connection, via the tagged gob-body escape.
func TestTCPGobFallbackFrame(t *testing.T) {
	a, b, _, rb, ma, _ := wirePair(t)
	if err := a.Send(b.Addr(), wireGobMsg{S: "legacy-payload"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), wireTestMsg{N: 1, S: "bin"}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, rb, 2)
	if n := ma.frames.gobFallback.Value(); n != 1 {
		t.Errorf("gob-fallback frames = %d, want 1", n)
	}
	if n := ma.frames.binary.Value(); n != 1 {
		t.Errorf("binary frames = %d, want 1", n)
	}
}

// TestTCPLegacyPeerFallback: dialing a pre-binary build (emulated by
// WireLegacy) falls back to a pure gob connection after the peer rejects
// the preamble, and the peer is remembered as gob-only so later dials
// skip the failed negotiation.
func TestTCPLegacyPeerFallback(t *testing.T) {
	a, b, _, rb, ma, _ := wirePair(t)
	b.SetWireMode(WireLegacy)
	if err := a.Send(b.Addr(), wireTestMsg{N: 7, S: "old"}); err != nil {
		t.Fatal(err)
	}
	got := waitMsgs(t, rb, 1)
	if want := string(a.Addr()) + ":{7 old}"; got[0] != want {
		t.Errorf("delivery = %q, want %q", got[0], want)
	}
	if n := ma.negotiationFallbacks.Value(); n != 1 {
		t.Errorf("negotiation fallbacks = %d, want 1", n)
	}
	if n := ma.frames.gob.Value(); n != 1 {
		t.Errorf("gob frames = %d, want 1", n)
	}
	if !a.peerGobOnly(b.Addr()) {
		t.Error("peer not remembered as gob-only")
	}

	// Force a re-dial: the endpoint must go straight to gob this time.
	a.mu.Lock()
	oc := a.conns[b.Addr()]
	a.mu.Unlock()
	a.dropConn(b.Addr(), oc)
	if err := a.Send(b.Addr(), wireTestMsg{N: 8, S: "again"}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, rb, 2)
	if n := ma.negotiationFallbacks.Value(); n != 1 {
		t.Errorf("re-dial negotiated again: fallbacks = %d, want still 1", n)
	}
}

// TestTCPWireGobMode: an endpoint pinned to WireGob dials gob outright —
// no preamble, no fallback counter — but still accepts binary inbound.
func TestTCPWireGobMode(t *testing.T) {
	a, b, _, rb, ma, mb := wirePair(t)
	a.SetWireMode(WireGob)
	if err := a.Send(b.Addr(), wireTestMsg{N: 1, S: "gob"}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, rb, 1)
	if n := ma.frames.gob.Value(); n != 1 {
		t.Errorf("gob frames = %d, want 1", n)
	}
	if n := ma.negotiationFallbacks.Value(); n != 0 {
		t.Errorf("fallbacks = %d, want 0", n)
	}

	// The reverse direction still negotiates binary.
	ra := a.handler.(*recorder)
	if err := b.Send(a.Addr(), wireTestMsg{N: 2, S: "rev"}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, ra, 1)
	if n := mb.frames.binary.Value(); n != 1 {
		t.Errorf("b->a binary frames = %d, want 1", n)
	}
}

// rawHandshake dials to and completes the binary negotiation by hand,
// returning the open connection ready for frames.
func rawHandshake(t *testing.T, to Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var e wire.Encoder
	e.String("1.2.3.4:5")
	if _, err := conn.Write(wirePreamble[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(e.Bytes()); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != wireAck {
		t.Fatalf("handshake ack: %v %v", ack, err)
	}
	return conn
}

// TestTCPFrameRejectedOversize: a frame header claiming more than
// MaxInboundFrame must kill the connection with a counted rejection and
// no allocation attempt.
func TestTCPFrameRejectedOversize(t *testing.T) {
	r := &recorder{}
	ep, err := ListenTCP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.Instrument(telemetry.NewRegistry(time.Now))
	m := ep.met.Load()

	conn := rawHandshake(t, ep.Addr())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(MaxInboundFrame+1))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m.frameRejected, 1)
	// The endpoint must have hung up rather than waiting for the body.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Error("connection still open after oversize frame")
	}
	if got := r.snapshot(); len(got) != 0 {
		t.Errorf("hostile frame delivered messages: %v", got)
	}
}

// TestTCPFrameRejectedCorrupt: bad preamble magic and undecodable frame
// bodies are both counted and fatal to their connection.
func TestTCPFrameRejectedCorrupt(t *testing.T) {
	r := &recorder{}
	ep, err := ListenTCP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.Instrument(telemetry.NewRegistry(time.Now))
	m := ep.met.Load()

	// Zero lead byte (binary sniff) but garbage magic.
	conn, err := net.Dial("tcp", string(ep.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x00, 'X', 'X', 'X', 0x01})
	waitCounter(t, m.frameRejected, 1)
	conn.Close()

	// Valid handshake, then a frame whose body decodes to nothing: an
	// unknown wire tag.
	conn2 := rawHandshake(t, ep.Addr())
	var e wire.Encoder
	e.Uvarint(9_999_999)
	body := e.Bytes()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	conn2.Write(hdr[:])
	conn2.Write(body)
	waitCounter(t, m.frameRejected, 2)
	if got := r.snapshot(); len(got) != 0 {
		t.Errorf("corrupt frames delivered messages: %v", got)
	}
}

// TestTCPGobStreamBounded: the legacy gob read path enforces the same
// inbound cap — one hostile message trips frameRejected instead of
// allocating without bound. (The cap is a package global shared with live
// read loops, so the test crosses the real 32MB limit rather than
// shrinking it and racing other connections.)
func TestTCPGobStreamBounded(t *testing.T) {
	r := &recorder{}
	ep, err := ListenTCP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.Instrument(telemetry.NewRegistry(time.Now))
	m := ep.met.Load()

	conn, err := net.Dial("tcp", string(ep.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	// Within the cap: delivered.
	if err := enc.Encode(wireEnvelope{From: "x", Payload: wireGobMsg{S: "small"}}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, r, 1)
	// Over the cap: rejected, connection dead. The write side may itself
	// error once the endpoint hangs up mid-message — that's fine.
	big := wireGobMsg{S: string(make([]byte, MaxInboundFrame+(1<<20)))}
	_ = enc.Encode(wireEnvelope{From: "x", Payload: big})
	waitCounter(t, m.frameRejected, 1)
	if got := r.snapshot(); len(got) != 1 {
		t.Errorf("oversize gob message delivered: %d messages", len(got))
	}
}

// TestTCPDialSingleflight: a burst of first sends to a fresh peer shares
// one dial instead of racing N connections.
func TestTCPDialSingleflight(t *testing.T) {
	a, b, _, rb, ma, _ := wirePair(t)
	const burst = 16
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Send(b.Addr(), wireTestMsg{N: uint64(i), S: "sf"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitMsgs(t, rb, burst)
	if n := ma.dials.Value(); n != 1 {
		t.Errorf("dials = %d, want 1 (singleflight)", n)
	}
}

// TestTCPWriteCoalescing: senders queued behind the connection's write
// lock share one flush — the group-commit syscall saving. The test parks
// a burst of senders on the lock, releases them together, and checks the
// whole burst cost exactly one flush.
func TestTCPWriteCoalescing(t *testing.T) {
	a, b, _, rb, ma, _ := wirePair(t)
	// Prime the connection.
	if err := a.Send(b.Addr(), wireTestMsg{N: 0, S: "prime"}); err != nil {
		t.Fatal(err)
	}
	waitMsgs(t, rb, 1)
	a.mu.Lock()
	oc := a.conns[b.Addr()]
	a.mu.Unlock()
	if oc == nil {
		t.Fatal("no cached connection after send")
	}

	flushesBefore := ma.flushes.Value()
	const burst = 8
	oc.mu.Lock()
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a.Send(b.Addr(), wireTestMsg{N: uint64(i), S: "burst"})
		}(i)
	}
	// Wait until every sender is parked on the write lock.
	deadline := time.Now().Add(5 * time.Second)
	for oc.pending.Load() < burst {
		if time.Now().After(deadline) {
			oc.mu.Unlock()
			t.Fatalf("only %d/%d senders queued", oc.pending.Load(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	oc.mu.Unlock()
	wg.Wait()
	waitMsgs(t, rb, 1+burst)
	if n := ma.flushes.Value() - flushesBefore; n != 1 {
		t.Errorf("burst of %d sends cost %d flushes, want 1 (group commit)", burst, n)
	}
	if n := ma.frames.binary.Value(); n != 1+burst {
		t.Errorf("binary frames = %d, want %d", n, 1+burst)
	}
}
