package transport

import (
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"
)

type tcpBlob struct{ B []byte }

func init() { gob.Register(tcpBlob{}) }

// TestTCPWriteDeadline: a peer that accepts connections but never drains
// its socket must not wedge the sender — once the kernel buffers fill, the
// write deadline fires and Send fails with ErrUnreachable in bounded time.
func TestTCPWriteDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			<-stop // hold the connection open without ever reading
		}
	}()

	oldWrite := TCPWriteTimeout
	TCPWriteTimeout = 250 * time.Millisecond
	defer func() { TCPWriteTimeout = oldWrite }()

	ep, err := ListenTCP("127.0.0.1:0", &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Large enough to overrun the socket buffers of both the first write
	// and the retry on a fresh dial.
	payload := tcpBlob{B: make([]byte, 16<<20)}
	start := time.Now()
	err = ep.Send(Addr(ln.Addr().String()), payload)
	if err == nil {
		t.Fatal("send to a non-reading peer succeeded; expected deadline failure")
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("send error = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("send took %v; write deadline did not bound it", elapsed)
	}
}
