package transport

import (
	"io"

	"squid/internal/telemetry"
)

// inprocMetrics are the in-process network's counters.
type inprocMetrics struct {
	sent        *telemetry.Counter
	unreachable *telemetry.Counter
}

// Instrument attaches the network's counters to a registry. Call before
// traffic starts (like SetObserver).
func (n *Inproc) Instrument(reg *telemetry.Registry) {
	m := &inprocMetrics{
		sent: reg.Counter("squid_transport_inproc_sent_total",
			"messages accepted for delivery by the in-process network"),
		unreachable: reg.Counter("squid_transport_inproc_unreachable_total",
			"sends that failed because the destination endpoint was gone"),
	}
	n.mu.Lock()
	n.met = m
	n.mu.Unlock()
}

// faultyMetrics mirror the Faulty layer's FaultStats atomics onto a
// registry (the atomics stay authoritative for deterministic experiment
// accounting; the mirror is for scraping).
type faultyMetrics struct {
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
	delayed   *telemetry.Counter
	partition *telemetry.Counter
	crash     *telemetry.Counter
}

// Instrument attaches the fault layer's counters to a registry. Call
// before traffic starts.
func (f *Faulty) Instrument(reg *telemetry.Registry) {
	events := reg.CounterVec("squid_transport_fault_events_total",
		"injected-fault outcomes per message", "event")
	m := &faultyMetrics{
		delivered: events.With("delivered"),
		dropped:   events.With("dropped"),
		delayed:   events.With("delayed"),
		partition: events.With("partition_drop"),
		crash:     events.With("crash_drop"),
	}
	f.mu.Lock()
	f.met = m
	f.mu.Unlock()
}

// tcpMetrics are one TCP endpoint's counters. reg supplies the clock for
// the send-latency histogram.
type tcpMetrics struct {
	reg      *telemetry.Registry
	sent     *telemetry.Counter
	received *telemetry.Counter
	bytes    *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram

	// Wire-codec accounting (DESIGN.md §4i): frames by codec, write
	// coalescing, negotiation outcomes and rejected inbound frames.
	frames               frameCounters
	flushes              *telemetry.Counter
	frameRejected        *telemetry.Counter
	dials                *telemetry.Counter
	dialsCoalesced       *telemetry.Counter
	negotiationFallbacks *telemetry.Counter
}

// frameCounters split outbound frames by the codec that carried them.
type frameCounters struct {
	binary      *telemetry.Counter // wire-codec frames on negotiated connections
	gob         *telemetry.Counter // legacy gob-stream frames
	gobFallback *telemetry.Counter // gob bodies inside binary frames (no codec for the type)
}

// tcpLatencyBucketsNS spans 50µs to 2s in roughly 5x steps — LAN writes
// land in the low buckets, timeouts and re-dials in the top ones.
var tcpLatencyBucketsNS = []int64{
	50_000, 250_000, 1_000_000, 5_000_000, 25_000_000,
	100_000_000, 500_000_000, 2_000_000_000,
}

// Instrument attaches the endpoint's counters to a registry. Call before
// traffic starts (immediately after ListenTCP). The registry's injected
// clock times each send, including dial and one re-dial retry.
func (ep *TCPEndpoint) Instrument(reg *telemetry.Registry) {
	frames := reg.CounterVec("squid_transport_tcp_frames_total",
		"outbound frames by codec", "codec")
	ep.met.Store(&tcpMetrics{
		reg: reg,
		sent: reg.Counter("squid_transport_tcp_sent_total",
			"messages successfully encoded to peers"),
		received: reg.Counter("squid_transport_tcp_received_total",
			"messages decoded from inbound connections"),
		bytes: reg.Counter("squid_transport_tcp_bytes_written_total",
			"bytes written to outbound connections (framed messages)"),
		errors: reg.Counter("squid_transport_tcp_send_errors_total",
			"sends that failed after the re-dial retry"),
		latency: reg.Histogram("squid_transport_tcp_send_latency_ns",
			"wall time per send, dial included", tcpLatencyBucketsNS),
		frames: frameCounters{
			binary:      frames.With("binary"),
			gob:         frames.With("gob"),
			gobFallback: frames.With("gob_fallback"),
		},
		flushes: reg.Counter("squid_transport_tcp_flushes_total",
			"outbound buffer flushes (syscalls); frames_total minus this is the write coalescing win"),
		frameRejected: reg.Counter("squid_transport_frame_rejected_total",
			"inbound frames dropped for oversize, bad preamble or undecodable bytes"),
		dials: reg.Counter("squid_transport_tcp_dials_total",
			"outbound connection dials"),
		dialsCoalesced: reg.Counter("squid_transport_tcp_dials_coalesced_total",
			"sends that joined another sender's in-flight dial instead of dialing"),
		negotiationFallbacks: reg.Counter("squid_transport_tcp_negotiation_fallback_total",
			"connections re-dialed in gob mode after the peer declined the binary codec"),
	})
}

// countingWriter tallies bytes flowing to an outbound connection.
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}
