package transport

import "testing"

// BenchmarkInprocSend measures mailbox throughput: one sender, one
// draining receiver; Quiesce bounds the measured region.
func BenchmarkInprocSend(b *testing.B) {
	net := NewInproc()
	net.Listen("sink", HandlerFunc(func(Addr, any) {}))
	src, err := net.Listen("src", HandlerFunc(func(Addr, any) {}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send("sink", i); err != nil {
			b.Fatal(err)
		}
	}
	net.Quiesce()
}
