package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type recorder struct {
	mu   sync.Mutex
	msgs []string
}

func (r *recorder) Deliver(from Addr, msg any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, fmt.Sprintf("%s:%v", from, msg))
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.msgs...)
}

func TestInprocBasicDelivery(t *testing.T) {
	net := NewInproc()
	ra, rb := &recorder{}, &recorder{}
	a, err := net.Listen("a", ra)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("b", rb); err != nil {
		t.Fatal(err)
	}
	if a.Addr() != "a" {
		t.Errorf("Addr = %q", a.Addr())
	}
	for i := 0; i < 5; i++ {
		if err := a.Send("b", i); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	got := rb.snapshot()
	if len(got) != 5 {
		t.Fatalf("b received %d messages: %v", len(got), got)
	}
	for i, m := range got {
		if want := fmt.Sprintf("a:%d", i); m != want {
			t.Errorf("message %d = %q, want %q (FIFO violated)", i, m, want)
		}
	}
}

func TestInprocSelfSend(t *testing.T) {
	net := NewInproc()
	ra := &recorder{}
	a, _ := net.Listen("a", ra)
	if err := a.Send("a", "hello"); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	if got := ra.snapshot(); len(got) != 1 || got[0] != "a:hello" {
		t.Errorf("self-send got %v", got)
	}
}

func TestInprocUnreachable(t *testing.T) {
	net := NewInproc()
	a, _ := net.Listen("a", &recorder{})
	if err := a.Send("ghost", 1); err != ErrUnreachable {
		t.Errorf("send to ghost: %v", err)
	}
	net.Kill("a")
	if err := a.Send("a", 1); err == nil {
		t.Error("send from killed endpoint should fail")
	}
}

func TestInprocDuplicateName(t *testing.T) {
	net := NewInproc()
	if _, err := net.Listen("a", &recorder{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a", &recorder{}); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := net.Listen("x", nil); err == nil {
		t.Error("nil handler should fail")
	}
}

// TestInprocQuiesceCascade checks that Quiesce waits through chains of
// handler-triggered sends, the property the whole simulator depends on.
func TestInprocQuiesceCascade(t *testing.T) {
	net := NewInproc()
	var count atomic.Int64
	const hops = 200
	var eps [3]Endpoint
	for i := 0; i < 3; i++ {
		i := i
		ep, err := net.Listen(Addr(fmt.Sprintf("n%d", i)), HandlerFunc(func(from Addr, msg any) {
			count.Add(1)
			n := msg.(int)
			if n < hops {
				// Bounce to the next endpoint.
				if err := eps[i].Send(Addr(fmt.Sprintf("n%d", (i+1)%3)), n+1); err != nil {
					t.Errorf("bounce: %v", err)
				}
			}
		}))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	if err := eps[0].Send("n1", 1); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	if got := count.Load(); got != hops {
		t.Errorf("handled %d messages, want %d", got, hops)
	}
}

func TestInprocKillDropsQueued(t *testing.T) {
	net := NewInproc()
	block := make(chan struct{})
	var handled atomic.Int64
	_, err := net.Listen("slow", HandlerFunc(func(from Addr, msg any) {
		handled.Add(1)
		<-block
	}))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := net.Listen("a", &recorder{})
	for i := 0; i < 10; i++ {
		if err := a.Send("slow", i); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the first message is being handled, then kill: the
	// remaining queued messages must be dropped and Quiesce must not hang.
	for handled.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	net.Kill("slow")
	close(block)
	done := make(chan struct{})
	go func() { net.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce hung after Kill")
	}
	if err := a.Send("slow", 99); err != ErrUnreachable {
		t.Errorf("send to killed: %v", err)
	}
}

func TestInprocObserver(t *testing.T) {
	net := NewInproc()
	var seen atomic.Int64
	net.SetObserver(func(from, to Addr, msg any) { seen.Add(1) })
	a, _ := net.Listen("a", &recorder{})
	net.Listen("b", &recorder{})
	for i := 0; i < 7; i++ {
		a.Send("b", i)
	}
	a.Send("ghost", 1) // must not be observed
	net.Quiesce()
	if seen.Load() != 7 {
		t.Errorf("observer saw %d messages, want 7", seen.Load())
	}
}

func TestInprocConcurrentSenders(t *testing.T) {
	net := NewInproc()
	var total atomic.Int64
	net.Listen("sink", HandlerFunc(func(from Addr, msg any) { total.Add(int64(msg.(int))) }))
	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		ep, err := net.Listen(Addr(fmt.Sprintf("s%d", s)), &recorder{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := ep.Send("sink", 1); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	net.Quiesce()
	if total.Load() != 8000 {
		t.Errorf("sink total = %d, want 8000", total.Load())
	}
}

type wirePing struct{ N int }

func TestTCPRoundTrip(t *testing.T) {
	Register(wirePing{})
	ra, rb := &recorder{}, &recorder{}
	a, err := ListenTCP("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", rb)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), wirePing{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rb.snapshot()) == 10 })
	got := rb.snapshot()
	for i, m := range got {
		if want := fmt.Sprintf("%s:{%d}", a.Addr(), i); m != want {
			t.Errorf("msg %d = %q, want %q", i, m, want)
		}
	}

	// Reply path reuses the reverse direction.
	if err := b.Send(a.Addr(), wirePing{N: 42}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(ra.snapshot()) == 1 })
}

func TestTCPSelfSend(t *testing.T) {
	Register(wirePing{})
	ra := &recorder{}
	a, err := ListenTCP("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(a.Addr(), wirePing{N: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(ra.snapshot()) == 1 })
}

func TestTCPUnreachableAndClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:1", wirePing{}); err == nil {
		t.Error("send to closed port should fail")
	}
	if err := a.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Send(a.Addr(), wirePing{}); err != ErrClosed {
		t.Errorf("send after close: %v", err)
	}
}

func TestTCPPeerRestart(t *testing.T) {
	Register(wirePing{})
	ra := &recorder{}
	a, err := ListenTCP("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	rb := &recorder{}
	b, err := ListenTCP("127.0.0.1:0", rb)
	if err != nil {
		t.Fatal(err)
	}
	baddr := b.Addr()
	if err := a.Send(baddr, wirePing{N: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rb.snapshot()) == 1 })
	b.Close()

	// Peer restarts on the same port; the cached dead connection must be
	// replaced transparently (possibly with one failed attempt in between).
	rb2 := &recorder{}
	b2, err := ListenTCP(string(baddr), rb2)
	if err != nil {
		t.Skipf("could not rebind %s: %v", baddr, err)
	}
	defer b2.Close()
	// A write on the stale cached connection may land in the OS buffer and
	// "succeed" before the reset surfaces, so keep probing until the new
	// listener actually receives something.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(rb2.snapshot()) == 0 {
		_ = a.Send(baddr, wirePing{N: 2})
		time.Sleep(10 * time.Millisecond)
	}
	if len(rb2.snapshot()) == 0 {
		t.Fatal("restarted peer never received a message")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
