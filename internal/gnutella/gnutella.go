// Package gnutella implements the unstructured flooding baseline the paper
// compares against qualitatively (Section 4.1.1: "a keyword search system
// like Gnutella would have to query the entire network using some form of
// flooding to guarantee that all the matches to a query are returned").
//
// Peers form a random graph; a query floods with a TTL and per-query
// duplicate suppression; matches are reported directly to the initiator.
// Flooding finds only what the TTL radius reaches: recall is not
// guaranteed, and message cost grows with the whole network rather than
// with the result set — the two defects Squid's structured approach fixes.
package gnutella

import (
	"fmt"
	"math/rand"
	"sync"

	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/transport"
)

// queryMsg floods the network.
type queryMsg struct {
	QID    uint64
	Query  keyspace.Query
	TTL    int
	Origin transport.Addr
}

// resultMsg reports local matches to the initiator.
type resultMsg struct {
	QID     uint64
	Matches []squid.Element
}

func init() {
	transport.Register(queryMsg{})
	transport.Register(resultMsg{})
}

// Peer is one unstructured participant.
type Peer struct {
	space     *keyspace.Space
	ep        transport.Endpoint
	neighbors []transport.Addr

	mu       sync.Mutex
	elems    []squid.Element
	seen     map[uint64]bool
	pending  map[uint64]*pendingQuery
	messages map[uint64]int // flood sends per query (summed network-wide by the driver)
}

type pendingQuery struct {
	matches []squid.Element
}

// NewPeer creates a peer over the given keyword space (used only for exact
// match filtering; flooding needs no index).
func NewPeer(space *keyspace.Space) *Peer {
	return &Peer{
		space:    space,
		seen:     make(map[uint64]bool),
		pending:  make(map[uint64]*pendingQuery),
		messages: make(map[uint64]int),
	}
}

// Start attaches the peer to its endpoint.
func (p *Peer) Start(ep transport.Endpoint) { p.ep = ep }

// SetNeighbors installs the peer's adjacency list.
func (p *Peer) SetNeighbors(ns []transport.Addr) {
	p.mu.Lock()
	p.neighbors = append([]transport.Addr(nil), ns...)
	p.mu.Unlock()
}

// AddElement stores an element locally (unstructured systems keep data
// where it is published).
func (p *Peer) AddElement(e squid.Element) {
	p.mu.Lock()
	p.elems = append(p.elems, e)
	p.mu.Unlock()
}

// Deliver implements transport.Handler.
func (p *Peer) Deliver(from transport.Addr, msg any) {
	switch m := msg.(type) {
	case queryMsg:
		p.handleQuery(m)
	case resultMsg:
		p.mu.Lock()
		if st, ok := p.pending[m.QID]; ok {
			st.matches = append(st.matches, m.Matches...)
		}
		p.mu.Unlock()
	}
}

func (p *Peer) handleQuery(m queryMsg) {
	p.mu.Lock()
	if p.seen[m.QID] {
		p.mu.Unlock()
		return
	}
	p.seen[m.QID] = true
	var local []squid.Element
	for _, e := range p.elems {
		if p.space.Matches(m.Query, e.Values) {
			local = append(local, e)
		}
	}
	neighbors := append([]transport.Addr(nil), p.neighbors...)
	p.mu.Unlock()

	if len(local) > 0 {
		_ = p.ep.Send(m.Origin, resultMsg{QID: m.QID, Matches: local}) // origin may have left; flooding makes no delivery guarantee
	}
	if m.TTL <= 0 {
		return
	}
	fwd := queryMsg{QID: m.QID, Query: m.Query, TTL: m.TTL - 1, Origin: m.Origin}
	for _, n := range neighbors {
		if p.ep.Send(n, fwd) == nil {
			p.mu.Lock()
			p.messages[m.QID]++
			p.mu.Unlock()
		}
	}
}

// Network is a simulated unstructured overlay.
type Network struct {
	Inproc *transport.Inproc
	Space  *keyspace.Space
	Peers  []*Peer

	nextQID uint64
	mu      sync.Mutex
}

// Build wires n peers into a random graph of the given average degree.
func Build(space *keyspace.Space, n, degree int, seed int64) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("gnutella: need at least one peer")
	}
	nw := &Network{Inproc: transport.NewInproc(), Space: space}
	addrs := make([]transport.Addr, n)
	for i := 0; i < n; i++ {
		p := NewPeer(space)
		addr := transport.Addr(fmt.Sprintf("g%d", i))
		ep, err := nw.Inproc.Listen(addr, p)
		if err != nil {
			return nil, err
		}
		p.Start(ep)
		nw.Peers = append(nw.Peers, p)
		addrs[i] = addr
	}
	// Random connected graph: a ring for connectivity plus random chords up
	// to the target degree.
	rng := rand.New(rand.NewSource(seed))
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	link := func(a, b int) {
		if a != b {
			adj[a][b] = true
			adj[b][a] = true
		}
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		for len(adj[i]) < degree {
			link(i, rng.Intn(n))
			if n <= degree {
				break
			}
		}
	}
	for i, p := range nw.Peers {
		var ns []transport.Addr
		for j := range adj[i] {
			ns = append(ns, addrs[j])
		}
		p.SetNeighbors(ns)
	}
	return nw, nil
}

// Publish stores an element at the given peer.
func (nw *Network) Publish(at int, e squid.Element) { nw.Peers[at].AddElement(e) }

// FloodResult reports one flooded query's outcome.
type FloodResult struct {
	Matches  []squid.Element
	Messages int // total query transmissions network-wide
	Visited  int // peers that saw the query
}

// Query floods q from the given peer with the TTL and returns matches
// found plus cost. Recall is complete only if the TTL covers the graph.
func (nw *Network) Query(from int, q keyspace.Query, ttl int) FloodResult {
	nw.mu.Lock()
	nw.nextQID++
	qid := nw.nextQID
	nw.mu.Unlock()

	origin := nw.Peers[from]
	origin.mu.Lock()
	origin.pending[qid] = &pendingQuery{}
	origin.mu.Unlock()

	origin.handleQuery(queryMsg{QID: qid, Query: q, TTL: ttl, Origin: origin.ep.Addr()})
	nw.Inproc.Quiesce()

	res := FloodResult{}
	origin.mu.Lock()
	res.Matches = origin.pending[qid].matches
	delete(origin.pending, qid)
	origin.mu.Unlock()
	for _, p := range nw.Peers {
		p.mu.Lock()
		res.Messages += p.messages[qid]
		if p.seen[qid] {
			res.Visited++
		}
		p.mu.Unlock()
	}
	return res
}
