package gnutella

import (
	"fmt"
	"testing"

	"squid/internal/keyspace"
	"squid/internal/squid"
)

func buildFloodNet(t *testing.T, n, degree int) *Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := Build(space, n, degree, 3)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestFloodFullTTLFindsEverything(t *testing.T) {
	nw := buildFloodNet(t, 50, 4)
	want := 0
	for i := 0; i < 200; i++ {
		vals := []string{"computer", "network"}
		if i%3 == 0 {
			vals = []string{"data", "storage"}
			want++
		}
		nw.Publish(i%len(nw.Peers), squid.Element{Values: vals, Data: fmt.Sprintf("d%d", i)})
	}
	res := nw.Query(0, keyspace.MustParse("(data, *)"), len(nw.Peers))
	if len(res.Matches) != want {
		t.Errorf("full flood found %d, want %d", len(res.Matches), want)
	}
	if res.Visited != len(nw.Peers) {
		t.Errorf("full flood visited %d of %d peers", res.Visited, len(nw.Peers))
	}
	if res.Messages < len(nw.Peers)-1 {
		t.Errorf("implausibly few messages: %d", res.Messages)
	}
}

func TestFloodSmallTTLMissesMatches(t *testing.T) {
	// The defining weakness flooding has and Squid fixes: recall depends on
	// the TTL radius.
	nw := buildFloodNet(t, 80, 3)
	for i := 0; i < 80; i++ {
		nw.Publish(i, squid.Element{Values: []string{"grid", "node"}, Data: fmt.Sprintf("d%d", i)})
	}
	full := nw.Query(0, keyspace.MustParse("(grid, *)"), 80)
	short := nw.Query(0, keyspace.MustParse("(grid, *)"), 2)
	if len(full.Matches) != 80 {
		t.Fatalf("full flood found %d", len(full.Matches))
	}
	if len(short.Matches) >= len(full.Matches) {
		t.Errorf("TTL-2 flood should miss matches: %d vs %d", len(short.Matches), len(full.Matches))
	}
	if short.Messages >= full.Messages {
		t.Errorf("TTL-2 should send fewer messages: %d vs %d", short.Messages, full.Messages)
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	nw := buildFloodNet(t, 30, 6)
	res := nw.Query(5, keyspace.MustParse("(x*, *)"), 30)
	// With duplicate suppression, total messages are bounded by edges*2.
	if res.Messages > 30*6*2 {
		t.Errorf("messages %d exceed edge bound", res.Messages)
	}
	if res.Visited != 30 {
		t.Errorf("visited %d", res.Visited)
	}
}

func TestBuildErrors(t *testing.T) {
	space, _ := keyspace.NewWordSpace(2, 16)
	if _, err := Build(space, 0, 3, 1); err == nil {
		t.Error("0 peers should fail")
	}
}
