package isfc

import (
	"math/rand"
	"testing"

	"squid/internal/can"
	"squid/internal/sfc"
)

func TestAlignedBlocksExact(t *testing.T) {
	h := sfc.MustHilbert(2, 4) // 8 index bits
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		a := rng.Uint64() & 255
		b := rng.Uint64() & 255
		if a > b {
			a, b = b, a
		}
		blocks := AlignedBlocks(a, b, 2, 4)
		// Blocks must tile [a, b] exactly, in order, without overlap.
		next := a
		for _, bl := range blocks {
			span := bl.Span(h)
			if span.Lo != next {
				t.Fatalf("[%d,%d]: block %v starts at %d, want %d", a, b, bl, span.Lo, next)
			}
			if span.Lo&(span.Count()-1) != 0 {
				t.Fatalf("block %v not aligned", bl)
			}
			next = span.Hi + 1
		}
		if next != b+1 {
			t.Fatalf("[%d,%d]: blocks end at %d", a, b, next-1)
		}
	}
}

func TestAlignedBlocksFullSpace(t *testing.T) {
	blocks := AlignedBlocks(0, (1<<8)-1, 2, 4)
	if len(blocks) != 1 || blocks[0].Level != 0 {
		t.Errorf("full space should be one level-0 block, got %v", blocks)
	}
	single := AlignedBlocks(7, 7, 2, 4)
	if len(single) != 1 || single[0].Level != 4 || single[0].Prefix != 7 {
		t.Errorf("single cell block = %v", single)
	}
}

func TestIndexQueryVisitsOwningZones(t *testing.T) {
	network, err := can.Build(2, 6, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(network, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ix.ValueBits() != 12 {
		t.Fatalf("value bits = %d", ix.ValueBits())
	}

	// Place values and query a range; the zones owning in-range values
	// must all be visited.
	h := sfc.MustHilbert(2, 6)
	rng := rand.New(rand.NewSource(7))
	var values []uint64
	for i := 0; i < 400; i++ {
		v := rng.Uint64() & 4095
		values = append(values, v)
		ix.Add(v)
	}
	lo, hi := uint64(1000), uint64(1600)
	cost, err := ix.Query(0, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Zones == 0 || cost.Subcubes == 0 {
		t.Fatalf("degenerate cost %+v", cost)
	}
	// Verify coverage: every zone containing an in-range value must be
	// within the visited count's reach — recompute visited zones directly.
	visited := map[int]bool{}
	pt := make([]uint64, 2)
	for _, cl := range AlignedBlocks(lo, hi, 2, 6) {
		span := cl.Span(h)
		h.Decode(span.Lo, pt)
		shift := uint(6 - cl.Level)
		boxLo := []uint64{(pt[0] >> shift) << shift, (pt[1] >> shift) << shift}
		boxHi := []uint64{boxLo[0] | (1<<shift - 1), boxLo[1] | (1<<shift - 1)}
		zs, _ := network.VisitRegion([]uint64{0, 0}, boxLo, boxHi)
		for _, z := range zs {
			visited[z] = true
		}
	}
	for _, v := range values {
		if v < lo || v > hi {
			continue
		}
		h.Decode(v, pt)
		owner := network.Locate(pt)
		if !visited[owner.ID] {
			t.Errorf("value %d's zone %d not visited", v, owner.ID)
		}
	}
	if cost.Zones != len(visited) {
		t.Errorf("cost.Zones = %d, recomputed %d", cost.Zones, len(visited))
	}

	if _, err := ix.Query(0, 10, 5); err == nil {
		t.Error("inverted range should error")
	}
}
