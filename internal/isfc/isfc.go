// Package isfc implements the Andrzejak-Xu inverse-SFC range-query index
// over CAN — the one other SFC-based P2P discovery system the paper cites
// (related work [1], "Scalable, efficient range queries for grid
// information services", P2P 2002).
//
// Where Squid maps the d-dimensional keyword space *forward* onto a
// 1-dimensional Chord ring, Andrzejak-Xu do the opposite: a single
// resource attribute (e.g. memory) is treated as a position on a Hilbert
// curve and mapped *inverse* into CAN's d-dimensional zone space. A range
// of attribute values is a curve segment, which decomposes into aligned
// subcubes (digital causality again); the query visits every CAN zone
// intersecting those subcubes.
//
// The benchmark compares this against Squid restricted to one attribute
// dimension, reproducing the paper's architectural argument: Squid
// generalizes the same curve trick to multiple attributes on any overlay.
package isfc

import (
	"fmt"

	"squid/internal/can"
	"squid/internal/sfc"
)

// Index is an inverse-SFC attribute index over a CAN overlay.
type Index struct {
	can   *can.Network
	curve sfc.Hilbert
	dims  int
	bits  int
}

// New builds the index: attribute values live in [0, 2^(dims*bits)) and
// are placed into the CAN by Hilbert decoding.
func New(network *can.Network, dims, bits int) (*Index, error) {
	h, err := sfc.NewHilbert(dims, bits)
	if err != nil {
		return nil, err
	}
	return &Index{can: network, curve: h, dims: dims, bits: bits}, nil
}

// ValueBits returns the width of attribute values.
func (ix *Index) ValueBits() int { return ix.dims * ix.bits }

// Add stores an attribute value: decode to a d-dimensional point, place in
// the owning zone.
func (ix *Index) Add(value uint64) {
	pt := make([]uint64, ix.dims)
	ix.curve.Decode(value, pt)
	ix.can.Add(pt)
}

// RangeCost reports the overlay cost of resolving the attribute range
// [lo, hi] from a random start point: the distinct zones visited and the
// messages used (greedy route to each subcube region plus the constrained
// flood within it).
type RangeCost struct {
	Zones    int
	Messages int
	Subcubes int
}

// Query resolves [lo, hi] (inclusive attribute values) starting from the
// zone owning the from value.
func (ix *Index) Query(from, lo, hi uint64) (RangeCost, error) {
	if lo > hi {
		return RangeCost{}, fmt.Errorf("isfc: inverted range [%d, %d]", lo, hi)
	}
	max := uint64(1)<<(ix.dims*ix.bits) - 1
	if hi > max {
		hi = max
	}
	start := make([]uint64, ix.dims)
	ix.curve.Decode(from, start)

	cost := RangeCost{}
	seen := map[int]bool{}
	boxLo := make([]uint64, ix.dims)
	boxHi := make([]uint64, ix.dims)
	pt := make([]uint64, ix.dims)
	for _, cl := range AlignedBlocks(lo, hi, ix.dims, ix.bits) {
		cost.Subcubes++
		// The subcube of a curve block: decode its lowest index, truncate.
		span := cl.Span(ix.curve)
		ix.curve.Decode(span.Lo, pt)
		shift := uint(ix.bits - cl.Level)
		for i := range pt {
			boxLo[i] = (pt[i] >> shift) << shift
			boxHi[i] = boxLo[i] | (uint64(1)<<shift - 1)
		}
		zones, msgs := ix.can.VisitRegion(start, boxLo, boxHi)
		cost.Messages += msgs
		for _, z := range zones {
			if !seen[z] {
				seen[z] = true
				cost.Zones++
			}
		}
	}
	return cost, nil
}

// AlignedBlocks decomposes the inclusive index interval [lo, hi] into the
// minimal sequence of curve-aligned blocks (prefix, level) — each a whole
// subcube by digital causality. This is the classic segment-tree style
// greedy: repeatedly take the largest aligned block starting at lo that
// fits.
func AlignedBlocks(lo, hi uint64, dims, bits int) []sfc.Cluster {
	var out []sfc.Cluster
	fanShift := uint(dims)
	for {
		// Largest block size 2^(dims*l) with lo aligned and fitting in range.
		shift := uint(0)
		for int(shift+fanShift) <= dims*bits && shift+fanShift < 64 {
			next := shift + fanShift
			size := uint64(1) << next
			if lo&(size-1) != 0 {
				break
			}
			if size-1 > hi-lo {
				break
			}
			shift = next
		}
		level := bits - int(shift)/dims
		out = append(out, sfc.Cluster{Prefix: lo >> shift, Level: level})
		blockEnd := lo | (uint64(1)<<shift - 1)
		if blockEnd >= hi {
			return out
		}
		lo = blockEnd + 1
	}
}
