package loadbalance

import (
	"math/rand"
	"testing"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/stats"
	"squid/internal/workload"
)

// skewedNetwork builds a network whose data is Zipf-skewed, so the
// SFC-preserved locality concentrates keys on few arcs (the paper's
// Fig. 18 situation).
func skewedNetwork(t testing.TB, nodes, keys int) *sim.Network {
	t.Helper()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	vocab := workload.NewVocabulary(11, 400, 1.3)
	tuples := workload.KeyTuples(vocab, 13, keys, 2)
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestProbeLoadsAndChooseBest(t *testing.T) {
	nw := skewedNetwork(t, 20, 2000)
	member := nw.Peers[0].Node
	rng := rand.New(rand.NewSource(1))
	candidates := make([]chord.ID, 8)
	for i := range candidates {
		candidates[i] = chord.ID(rng.Uint64() & ((1 << 32) - 1))
	}
	ch := make(chan []CandidateLoad, 1)
	member.Invoke(func() { ProbeLoads(member, candidates, func(l []CandidateLoad) { ch <- l }) })
	loads := <-ch
	nw.Quiesce()
	if len(loads) != 8 {
		t.Fatalf("got %d probe results", len(loads))
	}
	for i, c := range loads {
		if c.Load < 0 {
			t.Errorf("probe %d failed", i)
		}
		// Verify against the oracle owner's actual load.
		owner := nw.SuccessorOf(uint64(c.ID))
		if c.Owner.Addr != owner.Addr() {
			t.Errorf("probe %d owner %s, oracle %s", i, c.Owner, owner.Node.Self())
		}
	}
	best, ok := ChooseBest(loads)
	if !ok {
		t.Fatal("ChooseBest failed")
	}
	bestLoad := -1
	for _, c := range loads {
		if c.ID == best {
			bestLoad = c.Load
		}
	}
	for _, c := range loads {
		if c.Load > bestLoad {
			t.Errorf("ChooseBest missed a hotter arc: %d > %d", c.Load, bestLoad)
		}
	}
	if _, ok := ChooseBest(nil); ok {
		t.Error("empty ChooseBest should fail")
	}
	if _, ok := ChooseBest([]CandidateLoad{{Load: -1}}); ok {
		t.Error("all-failed ChooseBest should fail")
	}
}

// TestSampledJoinBeatsUniform grows two networks from a single seed node
// holding all keys: one with uniformly random joins, one with the paper's
// join-time sampling. Sampling must yield a visibly better balance.
func TestSampledJoinBeatsUniform(t *testing.T) {
	const grow = 30
	build := func(sampled bool) []int {
		nw := skewedNetwork(t, 1, 4000)
		// Distinct tuples may collide on index keys (axis truncation), so
		// the conserved quantity is the initial distinct-key count.
		keys := nw.TotalKeys()
		rng := rand.New(rand.NewSource(21))
		randID := func() chord.ID { return chord.ID(rng.Uint64() & ((1 << 32) - 1)) }
		for i := 0; i < grow; i++ {
			var err error
			if sampled {
				_, err = SampledJoin(nw, 8, randID)
			} else {
				_, err = nw.AddPeer(randID())
			}
			if err != nil {
				t.Fatalf("grow %d: %v", i, err)
			}
		}
		if got := nw.TotalKeys(); got != keys {
			t.Fatalf("keys lost during growth: %d -> %d", keys, got)
		}
		return nw.LoadVector()
	}
	uniform := stats.Gini(build(false))
	sampled := stats.Gini(build(true))
	t.Logf("gini uniform=%.3f sampled=%.3f", uniform, sampled)
	if sampled >= uniform {
		t.Errorf("sampled join gini %.3f should beat uniform %.3f", sampled, uniform)
	}
}

func TestNeighborBalanceImprovesAndPreservesData(t *testing.T) {
	nw := skewedNetwork(t, 30, 5000)
	before := stats.Gini(nw.LoadVector())
	keysBefore := nw.TotalKeys()

	rounds, err := Balance(nw, 2.0, 12)
	if err != nil {
		t.Fatal(err)
	}
	after := stats.Gini(nw.LoadVector())
	t.Logf("gini %.3f -> %.3f in %d rounds", before, after, rounds)
	if after >= before {
		t.Errorf("balancing did not improve gini: %.3f -> %.3f", before, after)
	}
	if got := nw.TotalKeys(); got != keysBefore {
		t.Errorf("balancing lost keys: %d -> %d", keysBefore, got)
	}
	if err := nw.VerifyConsistent(); err != nil {
		t.Fatalf("ring inconsistent after balancing: %v", err)
	}
	// Queries remain complete after relocations.
	q := keyspace.MustParse("(a*, *)")
	want := len(nw.BruteForceMatches(q))
	res, _ := nw.Query(0, q)
	if res.Err != nil || len(res.Matches) != want {
		t.Errorf("query after balancing: got %d want %d err %v", len(res.Matches), want, res.Err)
	}
}

func TestVirtualPool(t *testing.T) {
	nw := skewedNetwork(t, 40, 4000)
	vp, err := NewVirtualPool(nw, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVirtualPool(nw, 0); err == nil {
		t.Error("zero hosts should fail")
	}

	hl := vp.HostLoads()
	if len(hl) != 10 {
		t.Fatalf("host loads = %v", hl)
	}
	total := 0
	for _, l := range hl {
		total += l
	}
	if total != nw.TotalKeys() {
		t.Errorf("host loads sum %d != total keys %d", total, nw.TotalKeys())
	}

	// Split every virtual node above twice the mean.
	mean := total / len(nw.Peers)
	peersBefore := len(nw.Peers)
	splits := vp.Split(2 * mean)
	if splits == 0 {
		t.Log("no virtual node exceeded the split threshold (acceptable for this seed)")
	}
	if len(nw.Peers) != peersBefore+splits {
		t.Errorf("peer count %d after %d splits of %d", len(nw.Peers), splits, peersBefore)
	}
	if nw.TotalKeys() != total {
		t.Errorf("splits lost keys")
	}

	// Migration flattens host loads without touching the ring.
	ringBefore := len(nw.Peers)
	giniBefore := stats.Gini(vp.HostLoads())
	moves := vp.MigrateAll(100)
	giniAfter := stats.Gini(vp.HostLoads())
	t.Logf("host gini %.3f -> %.3f in %d moves", giniBefore, giniAfter, moves)
	if len(nw.Peers) != ringBefore {
		t.Error("migration must not change the ring")
	}
	if moves > 0 && giniAfter >= giniBefore {
		t.Errorf("migration did not improve host balance: %.3f -> %.3f", giniBefore, giniAfter)
	}
	if got := len(vp.SortedHostLoads()); got != 10 {
		t.Errorf("sorted host loads = %d", got)
	}
	if len(vp.Assignment()) < len(nw.Peers) {
		t.Errorf("assignment map incomplete")
	}
}
