// Package loadbalance implements the paper's load-balancing mechanisms
// (Section 3.5). The SFC mapping preserves keyword locality, so keys are
// *not* uniformly distributed over the index space; with uniformly random
// node identifiers, load is unbalanced (paper Fig. 18). Three mechanisms
// repair this:
//
//   - Load balancing at node join: the joining node samples several
//     candidate identifiers, probes the load of each candidate's successor,
//     and joins where load is highest — splitting the hottest arc.
//   - Runtime neighbor balancing: periodically, lightly loaded nodes
//     relocate (leave + rejoin) to the key-median of their most loaded
//     neighbor's arc, taking over half of its keys.
//   - Virtual nodes: each physical peer hosts several virtual ring nodes;
//     overloaded virtual nodes split, and overloaded physical peers hand a
//     virtual node to a lighter peer (pure reassignment — the ring is
//     unchanged).
package loadbalance

import (
	"fmt"
	"sort"

	"squid/internal/chord"
	"squid/internal/sim"
)

// CandidateLoad reports the probe result for one candidate identifier.
type CandidateLoad struct {
	ID    chord.ID
	Owner chord.NodeRef
	Load  int
}

// ProbeLoads resolves, through the given ring member, the successor of
// every candidate identifier and its current load (stored keys). The
// callback runs in the member's delivery goroutine once all probes have
// answered. Cost: O(J log N) messages for J candidates, matching the
// paper's join-cost analysis.
func ProbeLoads(member *chord.Node, candidates []chord.ID, cb func([]CandidateLoad)) {
	results := make([]CandidateLoad, len(candidates))
	remaining := len(candidates)
	if remaining == 0 {
		cb(nil)
		return
	}
	finish := func() {
		remaining--
		if remaining == 0 {
			cb(results)
		}
	}
	for i, id := range candidates {
		i, id := i, id
		results[i] = CandidateLoad{ID: id, Load: -1}
		member.FindSuccessor(id, 0, func(m chord.FoundMsg, err error) {
			if err != nil {
				finish()
				return
			}
			results[i].Owner = m.Owner
			member.GetStateOf(m.Owner.Addr, func(st chord.StateMsg, err error) {
				if err == nil {
					results[i].Load = st.Load
				}
				finish()
			})
		})
	}
}

// ChooseBest picks the candidate whose successor is most loaded — the
// paper's join-time rule ("the new node uses the identifier that will
// place it in the most loaded part of the network"). Returns false if no
// probe succeeded.
func ChooseBest(loads []CandidateLoad) (chord.ID, bool) {
	best := -1
	for i, c := range loads {
		if c.Load < 0 {
			continue
		}
		if best < 0 || c.Load > loads[best].Load {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return loads[best].ID, true
}

// SampledJoin grows the network by one peer using join-time load
// balancing with the given number of candidate identifiers. It probes
// through a random existing member, picks the hottest arc, and joins
// there. Returns the new peer.
func SampledJoin(nw *sim.Network, samples int, randID func() chord.ID) (*sim.Peer, error) {
	if samples < 1 {
		samples = 1
	}
	member := nw.Peers[0].Node
	candidates := make([]chord.ID, samples)
	for i := range candidates {
		candidates[i] = randID()
	}
	ch := make(chan []CandidateLoad, 1)
	if err := member.Invoke(func() {
		ProbeLoads(member, candidates, func(ls []CandidateLoad) { ch <- ls })
	}); err != nil {
		return nil, fmt.Errorf("loadbalance: probe invoke: %w", err)
	}
	loads := <-ch
	nw.Quiesce()
	id, ok := ChooseBest(loads)
	if !ok {
		id = candidates[0]
	}
	p, err := nw.AddPeer(id)
	if err != nil {
		// Identifier collision or instability: retry once with a fresh
		// random identifier.
		return nw.AddPeer(randID())
	}
	return p, nil
}

// NeighborRound runs one round of the paper's first runtime algorithm:
// every node compares load with its successor, and when the successor is
// more than threshold times as loaded, the node relocates to the key
// median of the successor's arc, taking over roughly half of its keys
// (implemented, as in deployed DHTs, as a leave followed by a re-join at
// the chosen identifier). Returns the number of relocations performed.
func NeighborRound(nw *sim.Network, threshold float64) (int, error) {
	if threshold < 1 {
		threshold = 1
	}
	type move struct {
		lightID chord.ID
		target  chord.ID
	}
	loads := nw.LoadVector()
	n := len(nw.Peers)
	var plan []move
	claimed := make(map[chord.ID]bool) // heavy nodes already being split
	for i := 0; i < n; i++ {
		succ := (i + 1) % n
		if claimed[nw.Peers[succ].ID()] || claimed[nw.Peers[i].ID()] {
			continue
		}
		if float64(loads[succ]) > threshold*float64(loads[i]+1) && loads[succ] >= 4 {
			heavy := nw.Peers[succ]
			median, ok := medianKey(heavy)
			if !ok {
				continue
			}
			plan = append(plan, move{lightID: nw.Peers[i].ID(), target: chord.ID(median)})
			claimed[heavy.ID()] = true
			claimed[nw.Peers[i].ID()] = true
		}
	}
	moves := 0
	for _, mv := range plan {
		idx := peerIndex(nw, mv.lightID)
		if idx < 0 {
			continue
		}
		nw.RemovePeer(idx)
		if _, err := nw.AddPeer(mv.target); err != nil {
			// Collision: skip this move; the next round retries elsewhere.
			continue
		}
		moves++
	}
	return moves, nil
}

// Balance runs NeighborRound until no relocations happen or maxRounds is
// reached; returns rounds executed.
func Balance(nw *sim.Network, threshold float64, maxRounds int) (int, error) {
	for r := 0; r < maxRounds; r++ {
		moved, err := NeighborRound(nw, threshold)
		if err != nil {
			return r, err
		}
		if moved == 0 {
			return r, nil
		}
	}
	return maxRounds, nil
}

// medianKey returns the median stored key of a peer's arc.
func medianKey(p *sim.Peer) (uint64, bool) {
	ch := make(chan struct {
		k  uint64
		ok bool
	}, 1)
	sim.MustInvoke(p, func() {
		k, ok := p.Engine.LocalStore().MedianKey()
		ch <- struct {
			k  uint64
			ok bool
		}{k, ok}
	})
	r := <-ch
	return r.k, r.ok
}

func peerIndex(nw *sim.Network, id chord.ID) int {
	for i, p := range nw.Peers {
		if p.ID() == id {
			return i
		}
	}
	return -1
}

// VirtualPool assigns the network's ring nodes ("virtual nodes") to a
// smaller set of physical hosts and rebalances by splitting hot virtual
// nodes and migrating virtual nodes between hosts — the paper's second
// runtime algorithm.
type VirtualPool struct {
	nw     *sim.Network
	hosts  int
	assign map[chord.ID]int
}

// NewVirtualPool distributes the current peers round-robin over the given
// number of physical hosts.
func NewVirtualPool(nw *sim.Network, hosts int) (*VirtualPool, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("loadbalance: need at least one host")
	}
	vp := &VirtualPool{nw: nw, hosts: hosts, assign: make(map[chord.ID]int)}
	for i, p := range nw.Peers {
		vp.assign[p.ID()] = i % hosts
	}
	return vp, nil
}

// HostLoads sums each host's virtual-node loads.
func (vp *VirtualPool) HostLoads() []int {
	out := make([]int, vp.hosts)
	loads := vp.nw.LoadVector()
	for i, p := range vp.nw.Peers {
		h, ok := vp.assign[p.ID()]
		if !ok {
			h = i % vp.hosts
			vp.assign[p.ID()] = h
		}
		out[h] += loads[i]
	}
	return out
}

// Split divides every virtual node whose load exceeds threshold by adding
// a new virtual node (on the same host) at its arc's key median. Returns
// the number of splits.
func (vp *VirtualPool) Split(threshold int) int {
	splits := 0
	type cand struct {
		host   int
		target chord.ID
	}
	var plan []cand
	loads := vp.nw.LoadVector()
	for i, p := range vp.nw.Peers {
		if loads[i] <= threshold {
			continue
		}
		if m, ok := medianKey(p); ok {
			plan = append(plan, cand{host: vp.assign[p.ID()], target: chord.ID(m)})
		}
	}
	for _, c := range plan {
		p, err := vp.nw.AddPeer(c.target)
		if err != nil {
			continue
		}
		vp.assign[p.ID()] = c.host
		splits++
	}
	return splits
}

// Migrate moves the heaviest virtual node of the most loaded host to the
// least loaded host (bookkeeping only — the ring is untouched, exactly the
// cheapness argument the paper makes for virtual nodes). Returns true if a
// migration happened.
func (vp *VirtualPool) Migrate() bool {
	hostLoads := vp.HostLoads()
	hi, lo := 0, 0
	for h := range hostLoads {
		if hostLoads[h] > hostLoads[hi] {
			hi = h
		}
		if hostLoads[h] < hostLoads[lo] {
			lo = h
		}
	}
	if hi == lo || hostLoads[hi] <= hostLoads[lo]+1 {
		return false
	}
	// Heaviest virtual node on the hot host whose move does not overshoot.
	loads := vp.nw.LoadVector()
	best := -1
	for i, p := range vp.nw.Peers {
		if vp.assign[p.ID()] != hi {
			continue
		}
		if best < 0 || loads[i] > loads[best] {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	gap := hostLoads[hi] - hostLoads[lo]
	if loads[best] >= gap {
		// Moving it would invert the imbalance; move only if it still
		// improves the spread.
		if 2*loads[best]-gap >= gap {
			return false
		}
	}
	vp.assign[vp.nw.Peers[best].ID()] = lo
	return true
}

// MigrateAll runs Migrate until it stops improving or maxMoves is reached;
// returns moves performed.
func (vp *VirtualPool) MigrateAll(maxMoves int) int {
	moves := 0
	for moves < maxMoves && vp.Migrate() {
		moves++
	}
	return moves
}

// Assignment returns a copy of the virtual→host map, keyed by ring id.
func (vp *VirtualPool) Assignment() map[chord.ID]int {
	out := make(map[chord.ID]int, len(vp.assign))
	for k, v := range vp.assign {
		out[k] = v
	}
	return out
}

// SortedHostLoads is HostLoads sorted ascending (for distribution plots).
func (vp *VirtualPool) SortedHostLoads() []int {
	out := vp.HostLoads()
	sort.Ints(out)
	return out
}
