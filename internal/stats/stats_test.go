package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("N/Min/Max = %d/%d/%d", s.N, s.Min, s.Max)
	}
	if s.Mean != 5.5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Median != 5 {
		t.Errorf("Median = %v", s.Median)
	}
	if s.P95 != 10 {
		t.Errorf("P95 = %v", s.P95)
	}
	if s.CoV <= 0 {
		t.Errorf("CoV = %v", s.CoV)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty summary should be zero")
	}
	flat := Summarize([]int{4, 4, 4, 4})
	if flat.CoV != 0 {
		t.Errorf("uniform CoV = %v", flat.CoV)
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform Gini = %v", g)
	}
	concentrated := Gini([]int{0, 0, 0, 100})
	if concentrated < 0.7 {
		t.Errorf("concentrated Gini = %v, want near (n-1)/n", concentrated)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := Gini([]int{0, 0}); g != 0 {
		t.Errorf("zero-load Gini = %v", g)
	}
	// Monotonicity spot check: moving load to one node increases Gini.
	if Gini([]int{3, 3, 3, 3}) >= Gini([]int{1, 1, 1, 9}) {
		t.Error("Gini should increase with concentration")
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		g := Gini(vals)
		return g >= -1e-9 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalCounts(t *testing.T) {
	keys := []uint64{0, 1, 2, 100, 200, 255}
	counts := IntervalCounts(keys, 8, 4) // space 0..255, 4 intervals of 64
	want := []int{3, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	total := 0
	for _, c := range IntervalCounts(keys, 64, 10) {
		total += c
	}
	if total != len(keys) {
		t.Errorf("64-bit bucketing lost keys: %d", total)
	}
	if got := IntervalCounts(nil, 8, 5); len(got) != 5 {
		t.Error("empty keys should still return buckets")
	}
}

func TestIntervalCountsPreserveMass(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := make([]uint64, len(raw))
		for i, v := range raw {
			keys[i] = uint64(v)
		}
		counts := IntervalCounts(keys, 32, 17)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == len(keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 6 || len(counts) != 5 {
		t.Fatalf("edges %d counts %d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost values: %d", total)
	}
	if e, c := Histogram(nil, 5); e != nil || c != nil {
		t.Error("empty histogram should be nil")
	}
	// Degenerate single-value distribution.
	_, counts = Histogram([]int{7, 7, 7}, 3)
	total = 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost values")
	}
}
