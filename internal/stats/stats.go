// Package stats provides the small statistical toolkit the experiment
// harness uses: distribution summaries, histogram bucketing over the index
// space (paper Fig. 18) and load-imbalance measures (Fig. 19).
package stats

import (
	"math"
	"sort"
)

// Summary describes a distribution of non-negative counts.
type Summary struct {
	N      int
	Min    int
	Max    int
	Mean   float64
	Median float64
	P95    float64
	// CoV is the coefficient of variation (stddev/mean); 0 for a perfectly
	// balanced load.
	CoV float64
}

// Summarize computes a Summary. An empty input yields the zero Summary.
func Summarize(values []int) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{N: len(values), Min: values[0], Max: values[0]}
	sum := 0.0
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += float64(v)
	}
	s.Mean = sum / float64(len(values))
	varsum := 0.0
	for _, v := range values {
		d := float64(v) - s.Mean
		varsum += d * d
	}
	if s.Mean > 0 {
		s.CoV = math.Sqrt(varsum/float64(len(values))) / s.Mean
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	s.Median = percentile(sorted, 0.5)
	s.P95 = percentile(sorted, 0.95)
	return s
}

// percentile reads the p-quantile (0..1) from a sorted slice by
// nearest-rank.
func percentile(sorted []int, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i])
}

// Gini computes the Gini coefficient of a load vector: 0 = perfectly
// balanced, →1 = all load on one node.
func Gini(values []int) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += float64(v) * float64(2*(i+1)-n-1)
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// IntervalCounts buckets index-space keys into equal intervals — the
// paper's Fig. 18 ("the index space was partitioned into 500 intervals;
// the Y-axis represents the number of keys per interval").
func IntervalCounts(keys []uint64, indexBits, buckets int) []int {
	out := make([]int, buckets)
	if buckets == 0 {
		return out
	}
	// bucket = key / ceil(2^bits / buckets), computed without overflow.
	shiftDown := func(k uint64) int {
		if indexBits >= 64 {
			// Scale via the top 32 bits to avoid 128-bit arithmetic.
			return int((k >> 32) * uint64(buckets) >> 32)
		}
		total := uint64(1) << indexBits
		i := int(k / ((total + uint64(buckets) - 1) / uint64(buckets)))
		if i >= buckets {
			i = buckets - 1
		}
		return i
	}
	for _, k := range keys {
		out[shiftDown(k)]++
	}
	return out
}

// Histogram buckets arbitrary counts into the given number of equal-width
// bins between min and max (inclusive).
func Histogram(values []int, bins int) (edges []float64, counts []int) {
	if len(values) == 0 || bins <= 0 {
		return nil, nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := float64(hi-lo) / float64(bins)
	if width == 0 {
		width = 1
	}
	edges = make([]float64, bins+1)
	for i := range edges {
		edges[i] = float64(lo) + width*float64(i)
	}
	counts = make([]int, bins)
	for _, v := range values {
		i := int(float64(v-lo) / width)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return edges, counts
}
