// Command squid-sim is an interactive REPL over a simulated Squid
// network: build a ring, load corpora, publish, query, churn peers and
// watch load balancing — the fastest way to explore the system's
// behaviour.
//
// Two backends share one command set. The default goroutine backend runs
// every peer as a real mailbox goroutine — faithful concurrency, best for
// poking at protocol behaviour up to a few hundred nodes. -backend=des
// runs the discrete-event simulator instead: zero goroutines, virtual
// time, planet-scale rings. The `scale` command runs a full paper-scale
// experiment on the event core regardless of the session backend.
//
//	$ go run ./cmd/squid-sim
//	squid> build 100
//	squid> load 20000
//	squid> query (comp*, *)
//	squid> scale 5000
//	squid> help
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"squid/internal/chord"
	"squid/internal/dessim"
	"squid/internal/keyspace"
	"squid/internal/loadbalance"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/stats"
	"squid/internal/telemetry"
	"squid/internal/transport"
	"squid/internal/workload"
)

const helpText = `commands:
  build <nodes> [dims] [bits]   build a fresh network (default 2-D, 32-bit axes)
  load <keys>                   preload a synthetic keyword corpus
  publish <v1,v2,..> [name]     publish one element through a random peer
  query <query>                 run a flexible query, e.g. (comp*, *) or (10-20, *)
  keywords <w1> [w2..]          position-free keyword search (combination tuples)
  join [hex-id]                 protocol-join a new peer (random id if omitted)
  leave <i>                     peer i leaves voluntarily
  kill <i>                      peer i fails abruptly
  stabilize [rounds]            run stabilization rounds (default 3)
  balance [rounds]              run runtime load balancing (default 5; goroutine backend)
  loads                         show the load distribution
  peers                         list peers with their loads
  verify                        check ring and data-placement consistency
  check                         run the global ring-invariant checker (Zave)
  faults <drop-rate>            inject message loss (0..1; 0 heals)
  crash <i> | restart <i>       black-hole / revive peer i (state survives)
  stats                         fault, retry and recovery counters
  trace [qid]                   render a query's refinement tree (default: last query)
  metrics                       dump the telemetry registry (Prometheus text)
  scale <nodes> [queries]       planet-scale churn + query storm on the event core
  help                          this text
  quit`

// network is the backend-independent surface the REPL drives: both the
// goroutine simulator (sim.Network) and the discrete-event simulator
// (dessim.Network) satisfy it, so every command below works unchanged on
// either backend.
type network interface {
	Preload(elems []squid.Element) error
	Publish(via int, elem squid.Element) error
	Query(via int, q keyspace.Query) (squid.Result, sim.QueryMetrics)
	QueryKeywords(via int, words []string) squid.Result
	StabilizeAll(rounds int)
	LoadVector() []int
	TotalKeys() int
	VerifyConsistent() error
	CheckRing() []chord.Violation
	AddPeer(id chord.ID) (*sim.Peer, error)
	RemovePeer(i int)
	KillPeer(i int)
	ChordCounters() chord.Counters
	RecoveryCounters() squid.RecoveryCounters
	PeerList() []*sim.Peer
	KeySpace() *keyspace.Space
	Registry() *telemetry.Registry
	TraceStore() *telemetry.TraceStore
}

var (
	_ network = (*sim.Network)(nil)
	_ network = (*dessim.Network)(nil)
)

// faultSurface is the fault-injection controls shared by the goroutine
// stack's fault layer (transport.Faulty) and the event-core transport
// (dessim.Net).
type faultSurface interface {
	SetDropRate(p float64)
	Crash(name transport.Addr)
	Restart(name transport.Addr)
	Stats() transport.FaultStats
}

type session struct {
	backend string // "goroutine" (default) or "des"
	net     network
	faults  faultSurface
	rng     *rand.Rand
}

func main() {
	backend := flag.String("backend", "goroutine",
		"simulator backend: goroutine (one mailbox goroutine per peer) or des (discrete-event, virtual time)")
	flag.Parse()
	if *backend != "goroutine" && *backend != "des" {
		fmt.Fprintf(os.Stderr, "unknown backend %q (want goroutine or des)\n", *backend)
		os.Exit(2)
	}
	fmt.Printf("squid-sim — interactive Squid network simulator (%s backend). Type 'help'.\n", *backend)
	s := &session{backend: *backend, rng: rand.New(rand.NewSource(1))}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("squid> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			if err := s.exec(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("squid> ")
	}
}

func (s *session) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println(helpText)
		return nil
	case "build":
		return s.build(args)
	case "scale":
		return s.scale(args)
	}
	if s.net == nil {
		return fmt.Errorf("no network yet; use: build <nodes>")
	}
	switch cmd {
	case "load":
		return s.load(args)
	case "publish":
		return s.publish(args)
	case "query":
		return s.query(strings.TrimSpace(strings.TrimPrefix(line, "query")))
	case "keywords":
		return s.keywords(args)
	case "join":
		return s.join(args)
	case "leave":
		return s.leave(args, false)
	case "kill":
		return s.leave(args, true)
	case "stabilize":
		rounds := atoiDefault(args, 0, 3)
		s.net.StabilizeAll(rounds)
		fmt.Printf("ran %d stabilization rounds\n", rounds)
		return nil
	case "balance":
		// Runtime load balancing drives peers through the goroutine
		// network's blocking helpers; it has no event-core port yet.
		g, ok := s.net.(*sim.Network)
		if !ok {
			return fmt.Errorf("balance requires the goroutine backend (restart without -backend=des)")
		}
		rounds, err := loadbalance.Balance(g, 2.0, atoiDefault(args, 0, 5))
		if err != nil {
			return err
		}
		fmt.Printf("balanced in %d rounds; gini now %.3f\n", rounds, stats.Gini(s.net.LoadVector()))
		return nil
	case "loads":
		v := s.net.LoadVector()
		sum := stats.Summarize(v)
		fmt.Printf("peers=%d keys=%d mean=%.1f max=%d p95=%.0f cov=%.2f gini=%.3f\n",
			len(v), s.net.TotalKeys(), sum.Mean, sum.Max, sum.P95, sum.CoV, stats.Gini(v))
		return nil
	case "peers":
		loads := s.net.LoadVector()
		for i, p := range s.net.PeerList() {
			fmt.Printf("%3d  id=%016x  keys=%d\n", i, uint64(p.ID()), loads[i])
		}
		return nil
	case "verify":
		if err := s.net.VerifyConsistent(); err != nil {
			return err
		}
		fmt.Println("ring and data placement consistent")
		return nil
	case "check":
		return s.check()
	case "faults":
		return s.setFaults(args)
	case "crash":
		return s.crash(args, true)
	case "restart":
		return s.crash(args, false)
	case "stats":
		return s.stats()
	case "trace":
		return s.trace(args)
	case "metrics":
		return s.net.Registry().WritePrometheus(os.Stdout)
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

func (s *session) setFaults(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: faults <drop-rate>")
	}
	rate, err := strconv.ParseFloat(args[0], 64)
	if err != nil || rate < 0 || rate > 1 {
		return fmt.Errorf("drop rate must be in [0, 1]")
	}
	s.faults.SetDropRate(rate)
	if rate == 0 {
		fmt.Println("faults cleared; run 'stabilize' to restore full recall")
	} else {
		fmt.Printf("dropping %.0f%% of messages; queries now degrade instead of hang\n", rate*100)
	}
	return nil
}

func (s *session) crash(args []string, down bool) error {
	verb := map[bool]string{true: "crash", false: "restart"}[down]
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <peer-index>", verb)
	}
	peers := s.net.PeerList()
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= len(peers) {
		return fmt.Errorf("peer index out of range (0..%d)", len(peers)-1)
	}
	addr := peers[i].Addr()
	if down {
		s.faults.Crash(addr)
		fmt.Printf("peer %d black-holed (state survives; 'restart %d' revives it)\n", i, i)
	} else {
		s.faults.Restart(addr)
		fmt.Printf("peer %d back online\n", i)
	}
	return nil
}

// check runs the global ring-invariant checker over a snapshot of every
// reachable peer — the machine check for Zave's membership invariants.
// Transient violations (dead arc boundaries awaiting rectify) are reported
// but distinguished from hard protocol failures.
func (s *session) check() error {
	vs := s.net.CheckRing()
	if len(vs) == 0 {
		fmt.Println("all ring invariants hold (ordered ring, one ring, connected, valid successor lists, ownership partition)")
		return nil
	}
	hard := 0
	for _, v := range vs {
		tag := "HARD     "
		if v.Transient() {
			tag = "transient"
		} else {
			hard++
		}
		fmt.Printf("  %s  %s\n", tag, v.Error())
	}
	fmt.Printf("%d violations (%d hard, %d transient); 'stabilize' heals transient ones\n",
		len(vs), hard, len(vs)-hard)
	return nil
}

func (s *session) stats() error {
	fs := s.faults.Stats()
	cc := s.net.ChordCounters()
	rc := s.net.RecoveryCounters()
	fmt.Printf("transport: delivered=%d dropped=%d delayed=%d partition-drops=%d crash-drops=%d\n",
		fs.Delivered, fs.Dropped, fs.Delayed, fs.PartitionDrops, fs.CrashDrops)
	fmt.Printf("chord rpc: find-retries=%d find-failures=%d state-retries=%d state-failures=%d\n",
		cc.FindRetries, cc.FindFailures, cc.StateRetries, cc.StateFailures)
	fmt.Printf("recovery:  redispatches=%d abandoned=%d partial-results=%d acks=%d\n",
		rc.Redispatches, rc.Abandoned, rc.Partials, rc.Acks)
	return nil
}

func (s *session) build(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: build <nodes> [dims] [bits]")
	}
	nodes, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	dims, bits := 2, 32
	if len(args) > 1 {
		if dims, err = strconv.Atoi(args[1]); err != nil {
			return err
		}
	}
	if len(args) > 2 {
		if bits, err = strconv.Atoi(args[2]); err != nil {
			return err
		}
	}
	space, err := keyspace.NewWordSpace(dims, bits)
	if err != nil {
		return err
	}
	if s.backend == "des" {
		nw, err := dessim.Build(dessim.Config{
			Nodes: nodes, Space: space, Seed: s.rng.Int63(),
			// The full recovery stack on virtual time: generous deadlines
			// cost nothing in wall clock, and impatient ones re-dispatch
			// subtrees that are still working.
			Engine: squid.Options{
				Replicas:       2,
				SubtreeTimeout: 8 * time.Second,
				QueryDeadline:  2 * time.Minute,
			},
			Chord: chord.Config{
				RPCTimeout: 400 * time.Millisecond,
				RPCRetries: 4,
				RPCBackoff: 10 * time.Millisecond,
			},
			// Realistic wide-area latency; 'faults <rate>' adds loss.
			Net: dessim.NetConfig{
				Seed:       s.rng.Int63(),
				MinLatency: 5 * time.Millisecond,
				MaxLatency: 80 * time.Millisecond,
			},
			Trace:           true,
			CheckInvariants: true,
		})
		if err != nil {
			return err
		}
		s.net, s.faults = nw, nw.Net
		fmt.Printf("built %d-peer event-core network over a %d-D, %d-bit keyword space\n", nodes, dims, bits)
		return nil
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: s.rng.Int63(),
		// The full recovery stack, so 'faults' and 'crash' demonstrate
		// graceful degradation instead of a hung REPL.
		Engine: squid.Options{
			Replicas:       2,
			SubtreeTimeout: 150 * time.Millisecond,
			QueryDeadline:  10 * time.Second,
		},
		// Zero backoff keeps retries inside the quiesce window, so the
		// synchronous 'stabilize' command still heals deterministically.
		Chord: chord.Config{
			RPCTimeout: 100 * time.Millisecond,
			RPCRetries: 4,
		},
		Faults: &transport.FaultConfig{Seed: s.rng.Int63()},
		Trace:  true,
		// Every 'stabilize' round also runs the ring-invariant checker;
		// 'check' runs it on demand and 'metrics' shows the counts.
		CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	s.net, s.faults = nw, nw.Faulty
	fmt.Printf("built %d-peer network over a %d-D, %d-bit keyword space\n", nodes, dims, bits)
	return nil
}

// scale runs a self-contained planet-scale experiment on the event core —
// bootstrap, Zipf corpus, invariant-checked stabilization, then a churn +
// query storm — and reports virtual time, events/sec, and the outcome. It
// leaves the session's network untouched, so it works from either backend.
func (s *session) scale(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: scale <nodes> [queries]")
	}
	nodes, err := strconv.Atoi(args[0])
	if err != nil || nodes < 2 {
		return fmt.Errorf("scale: need at least 2 nodes")
	}
	queries := atoiDefault(args, 1, 200)
	seed := s.rng.Int63()
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		return err
	}
	start := time.Now()
	nw, err := dessim.Build(dessim.Config{
		Nodes: nodes, Space: space, Seed: seed,
		Net: dessim.NetConfig{
			Seed:       seed + 1,
			MinLatency: 5 * time.Millisecond,
			MaxLatency: 80 * time.Millisecond,
			DropRate:   0.005,
		},
		Chord: chord.Config{
			RPCTimeout: 400 * time.Millisecond,
			RPCRetries: 3,
			RPCBackoff: 10 * time.Millisecond,
		},
		Engine: squid.Options{
			SubtreeTimeout: 8 * time.Second,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Minute,
		},
		CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	vocab := workload.NewVocabulary(seed+2, 2000, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+3, 4*nodes, 2))); err != nil {
		return err
	}
	nw.StabilizeAll(5)
	churn := nodes / 200
	storm := nw.RunStorm(dessim.StormConfig{
		Seed:            seed + 4,
		Queries:         queries,
		Vocab:           vocab,
		Dims:            2,
		Joins:           churn,
		Kills:           churn,
		StabilizeRounds: 5,
	})
	elapsed := time.Since(start)
	hard := len(chord.HardViolations(nw.CheckRing()))
	fmt.Printf("%d nodes, %d keys, %d queries, %d joins + %d kills under 0.5%% loss:\n",
		nodes, 4*nodes, queries, churn, churn)
	fmt.Printf("  %s\n", storm)
	fmt.Printf("  %d events in %v (%.0f events/sec); virtual %v; hard ring violations %d\n",
		nw.Core.Steps(), elapsed.Round(time.Millisecond),
		float64(nw.Core.Steps())/elapsed.Seconds(), nw.Core.Elapsed().Round(time.Second), hard)
	return nil
}

func (s *session) load(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load <keys>")
	}
	keys, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	vocab := workload.NewVocabulary(s.rng.Int63(), maxInt(200, keys/20), 1.2)
	tuples := workload.KeyTuples(vocab, s.rng.Int63(), keys, s.net.KeySpace().Dims())
	if err := s.net.Preload(workload.Elements(tuples)); err != nil {
		return err
	}
	fmt.Printf("loaded %d tuples (%d distinct index keys); try: query (%s*, *)\n",
		keys, s.net.TotalKeys(), vocab.Words[0][:3])
	return nil
}

func (s *session) publish(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: publish <v1,v2,..> [name]")
	}
	values := strings.Split(args[0], ",")
	name := "unnamed"
	if len(args) > 1 {
		name = strings.Join(args[1:], " ")
	}
	via := s.rng.Intn(len(s.net.PeerList()))
	if err := s.net.Publish(via, squid.Element{Values: values, Data: name}); err != nil {
		return err
	}
	if g, ok := s.net.(*sim.Network); ok {
		g.Quiesce() // the event backend's Publish already ran to quiescence
	}
	fmt.Printf("published %v as %q via peer %d\n", values, name, via)
	return nil
}

func (s *session) query(qs string) error {
	if qs == "" {
		return fmt.Errorf("usage: query (terms...)")
	}
	q, err := keyspace.Parse(qs)
	if err != nil {
		return err
	}
	res, qm := s.net.Query(s.rng.Intn(len(s.net.PeerList())), q)
	if res.Err != nil && !errors.Is(res.Err, squid.ErrPartialResult) {
		return res.Err
	}
	fmt.Printf("%d matches  routing=%d processing=%d data=%d messages=%d  (qid %d; 'trace' renders the tree)\n",
		len(res.Matches), len(qm.RoutingNodes), len(qm.ProcessingNodes), len(qm.DataNodes), qm.Messages(), res.QID)
	if qm.Redispatches > 0 || qm.Abandoned > 0 {
		fmt.Printf("recovery: %d subtree re-dispatches, %d abandoned\n", qm.Redispatches, qm.Abandoned)
	}
	if res.Err != nil {
		fmt.Printf("PARTIAL result: %v\n", res.Err)
	}
	printMatches(res.Matches)
	return nil
}

func (s *session) keywords(words []string) error {
	if len(words) == 0 {
		return fmt.Errorf("usage: keywords <w1> [w2..]")
	}
	res := s.net.QueryKeywords(s.rng.Intn(len(s.net.PeerList())), words)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("%d matches\n", len(res.Matches))
	printMatches(res.Matches)
	return nil
}

func (s *session) trace(args []string) error {
	traces := s.net.TraceStore()
	if traces == nil {
		return fmt.Errorf("tracing is not enabled on this network")
	}
	var (
		t  telemetry.Trace
		ok bool
	)
	if len(args) > 0 {
		qid, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("trace: bad query id %q", args[0])
		}
		t, ok = traces.Get(telemetry.QueryID(qid))
	} else {
		t, ok = traces.Last()
	}
	if !ok {
		return fmt.Errorf("no trace recorded (run a query first)")
	}
	t.Render(os.Stdout)
	return nil
}

func printMatches(ms []squid.Element) {
	for i, m := range ms {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(ms)-10)
			return
		}
		fmt.Printf("  %-28s %v\n", m.Data, m.Values)
	}
}

func (s *session) join(args []string) error {
	var id chord.ID
	if len(args) > 0 {
		v, err := strconv.ParseUint(args[0], 16, 64)
		if err != nil {
			return err
		}
		id = chord.ID(v)
	} else {
		id = chord.ID(s.rng.Uint64() & ((uint64(1) << s.net.KeySpace().IndexBits()) - 1))
	}
	p, err := s.net.AddPeer(id)
	if err != nil {
		return err
	}
	fmt.Printf("peer %016x joined (%d peers now)\n", uint64(p.ID()), len(s.net.PeerList()))
	return nil
}

func (s *session) leave(args []string, kill bool) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <peer-index>", map[bool]string{true: "kill", false: "leave"}[kill])
	}
	peers := s.net.PeerList()
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= len(peers) {
		return fmt.Errorf("peer index out of range (0..%d)", len(peers)-1)
	}
	id := peers[i].ID()
	if kill {
		s.net.KillPeer(i)
		fmt.Printf("peer %016x failed abruptly; run 'stabilize' to heal\n", uint64(id))
	} else {
		s.net.RemovePeer(i)
		fmt.Printf("peer %016x left gracefully\n", uint64(id))
	}
	return nil
}

func atoiDefault(args []string, i, def int) int {
	if i < len(args) {
		if v, err := strconv.Atoi(args[i]); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
