// Command squid-sim is an interactive REPL over a simulated Squid
// network: build a ring, load corpora, publish, query, churn peers and
// watch load balancing — the fastest way to explore the system's
// behaviour.
//
//	$ go run ./cmd/squid-sim
//	squid> build 100
//	squid> load 20000
//	squid> query (comp*, *)
//	squid> help
package main

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/loadbalance"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/stats"
	"squid/internal/telemetry"
	"squid/internal/transport"
	"squid/internal/workload"
)

const helpText = `commands:
  build <nodes> [dims] [bits]   build a fresh network (default 2-D, 32-bit axes)
  load <keys>                   preload a synthetic keyword corpus
  publish <v1,v2,..> [name]     publish one element through a random peer
  query <query>                 run a flexible query, e.g. (comp*, *) or (10-20, *)
  keywords <w1> [w2..]          position-free keyword search (combination tuples)
  join [hex-id]                 protocol-join a new peer (random id if omitted)
  leave <i>                     peer i leaves voluntarily
  kill <i>                      peer i fails abruptly
  stabilize [rounds]            run stabilization rounds (default 3)
  balance [rounds]              run runtime load balancing (default 5)
  loads                         show the load distribution
  peers                         list peers with their loads
  verify                        check ring and data-placement consistency
  check                         run the global ring-invariant checker (Zave)
  faults <drop-rate>            inject message loss (0..1; 0 heals)
  crash <i> | restart <i>       black-hole / revive peer i (state survives)
  stats                         fault, retry and recovery counters
  trace [qid]                   render a query's refinement tree (default: last query)
  metrics                       dump the telemetry registry (Prometheus text)
  help                          this text
  quit`

type session struct {
	nw  *sim.Network
	rng *rand.Rand
}

func main() {
	fmt.Println("squid-sim — interactive Squid network simulator. Type 'help'.")
	s := &session{rng: rand.New(rand.NewSource(1))}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("squid> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			if err := s.exec(line); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("squid> ")
	}
}

func (s *session) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Println(helpText)
		return nil
	case "build":
		return s.build(args)
	}
	if s.nw == nil {
		return fmt.Errorf("no network yet; use: build <nodes>")
	}
	switch cmd {
	case "load":
		return s.load(args)
	case "publish":
		return s.publish(args)
	case "query":
		return s.query(strings.TrimSpace(strings.TrimPrefix(line, "query")))
	case "keywords":
		return s.keywords(args)
	case "join":
		return s.join(args)
	case "leave":
		return s.leave(args, false)
	case "kill":
		return s.leave(args, true)
	case "stabilize":
		rounds := atoiDefault(args, 0, 3)
		s.nw.StabilizeAll(rounds)
		fmt.Printf("ran %d stabilization rounds\n", rounds)
		return nil
	case "balance":
		rounds, err := loadbalance.Balance(s.nw, 2.0, atoiDefault(args, 0, 5))
		if err != nil {
			return err
		}
		fmt.Printf("balanced in %d rounds; gini now %.3f\n", rounds, stats.Gini(s.nw.LoadVector()))
		return nil
	case "loads":
		v := s.nw.LoadVector()
		sum := stats.Summarize(v)
		fmt.Printf("peers=%d keys=%d mean=%.1f max=%d p95=%.0f cov=%.2f gini=%.3f\n",
			len(v), s.nw.TotalKeys(), sum.Mean, sum.Max, sum.P95, sum.CoV, stats.Gini(v))
		return nil
	case "peers":
		loads := s.nw.LoadVector()
		for i, p := range s.nw.Peers {
			fmt.Printf("%3d  id=%016x  keys=%d\n", i, uint64(p.ID()), loads[i])
		}
		return nil
	case "verify":
		if err := s.nw.VerifyConsistent(); err != nil {
			return err
		}
		fmt.Println("ring and data placement consistent")
		return nil
	case "check":
		return s.check()
	case "faults":
		return s.faults(args)
	case "crash":
		return s.crash(args, true)
	case "restart":
		return s.crash(args, false)
	case "stats":
		return s.stats()
	case "trace":
		return s.trace(args)
	case "metrics":
		return s.nw.Telemetry.WritePrometheus(os.Stdout)
	}
	return fmt.Errorf("unknown command %q (try 'help')", cmd)
}

func (s *session) faults(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: faults <drop-rate>")
	}
	rate, err := strconv.ParseFloat(args[0], 64)
	if err != nil || rate < 0 || rate > 1 {
		return fmt.Errorf("drop rate must be in [0, 1]")
	}
	s.nw.Faulty.SetDropRate(rate)
	if rate == 0 {
		fmt.Println("faults cleared; run 'stabilize' to restore full recall")
	} else {
		fmt.Printf("dropping %.0f%% of messages; queries now degrade instead of hang\n", rate*100)
	}
	return nil
}

func (s *session) crash(args []string, down bool) error {
	verb := map[bool]string{true: "crash", false: "restart"}[down]
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <peer-index>", verb)
	}
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= len(s.nw.Peers) {
		return fmt.Errorf("peer index out of range (0..%d)", len(s.nw.Peers)-1)
	}
	addr := s.nw.Peers[i].Addr()
	if down {
		s.nw.Faulty.Crash(addr)
		fmt.Printf("peer %d black-holed (state survives; 'restart %d' revives it)\n", i, i)
	} else {
		s.nw.Faulty.Restart(addr)
		fmt.Printf("peer %d back online\n", i)
	}
	return nil
}

// check runs the global ring-invariant checker over a snapshot of every
// reachable peer — the machine check for Zave's membership invariants.
// Transient violations (dead arc boundaries awaiting rectify) are reported
// but distinguished from hard protocol failures.
func (s *session) check() error {
	vs := s.nw.CheckRing()
	if len(vs) == 0 {
		fmt.Println("all ring invariants hold (ordered ring, one ring, connected, valid successor lists, ownership partition)")
		return nil
	}
	hard := 0
	for _, v := range vs {
		tag := "HARD     "
		if v.Transient() {
			tag = "transient"
		} else {
			hard++
		}
		fmt.Printf("  %s  %s\n", tag, v.Error())
	}
	fmt.Printf("%d violations (%d hard, %d transient); 'stabilize' heals transient ones\n",
		len(vs), hard, len(vs)-hard)
	return nil
}

func (s *session) stats() error {
	fs := s.nw.Faulty.Stats()
	cc := s.nw.ChordCounters()
	rc := s.nw.RecoveryCounters()
	fmt.Printf("transport: delivered=%d dropped=%d delayed=%d partition-drops=%d crash-drops=%d\n",
		fs.Delivered, fs.Dropped, fs.Delayed, fs.PartitionDrops, fs.CrashDrops)
	fmt.Printf("chord rpc: find-retries=%d find-failures=%d state-retries=%d state-failures=%d\n",
		cc.FindRetries, cc.FindFailures, cc.StateRetries, cc.StateFailures)
	fmt.Printf("recovery:  redispatches=%d abandoned=%d partial-results=%d acks=%d\n",
		rc.Redispatches, rc.Abandoned, rc.Partials, rc.Acks)
	return nil
}

func (s *session) build(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: build <nodes> [dims] [bits]")
	}
	nodes, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	dims, bits := 2, 32
	if len(args) > 1 {
		if dims, err = strconv.Atoi(args[1]); err != nil {
			return err
		}
	}
	if len(args) > 2 {
		if bits, err = strconv.Atoi(args[2]); err != nil {
			return err
		}
	}
	space, err := keyspace.NewWordSpace(dims, bits)
	if err != nil {
		return err
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: s.rng.Int63(),
		// The full recovery stack, so 'faults' and 'crash' demonstrate
		// graceful degradation instead of a hung REPL.
		Engine: squid.Options{
			Replicas:       2,
			SubtreeTimeout: 150 * time.Millisecond,
			QueryDeadline:  10 * time.Second,
		},
		// Zero backoff keeps retries inside the quiesce window, so the
		// synchronous 'stabilize' command still heals deterministically.
		Chord: chord.Config{
			RPCTimeout: 100 * time.Millisecond,
			RPCRetries: 4,
		},
		Faults: &transport.FaultConfig{Seed: s.rng.Int63()},
		Trace:  true,
		// Every 'stabilize' round also runs the ring-invariant checker;
		// 'check' runs it on demand and 'metrics' shows the counts.
		CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	s.nw = nw
	fmt.Printf("built %d-peer network over a %d-D, %d-bit keyword space\n", nodes, dims, bits)
	return nil
}

func (s *session) load(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load <keys>")
	}
	keys, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	vocab := workload.NewVocabulary(s.rng.Int63(), maxInt(200, keys/20), 1.2)
	tuples := workload.KeyTuples(vocab, s.rng.Int63(), keys, s.nw.Space.Dims())
	if err := s.nw.Preload(workload.Elements(tuples)); err != nil {
		return err
	}
	fmt.Printf("loaded %d tuples (%d distinct index keys); try: query (%s*, *)\n",
		keys, s.nw.TotalKeys(), vocab.Words[0][:3])
	return nil
}

func (s *session) publish(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: publish <v1,v2,..> [name]")
	}
	values := strings.Split(args[0], ",")
	name := "unnamed"
	if len(args) > 1 {
		name = strings.Join(args[1:], " ")
	}
	via := s.rng.Intn(len(s.nw.Peers))
	if err := s.nw.Publish(via, squid.Element{Values: values, Data: name}); err != nil {
		return err
	}
	s.nw.Quiesce()
	fmt.Printf("published %v as %q via peer %d\n", values, name, via)
	return nil
}

func (s *session) query(qs string) error {
	if qs == "" {
		return fmt.Errorf("usage: query (terms...)")
	}
	q, err := keyspace.Parse(qs)
	if err != nil {
		return err
	}
	res, qm := s.nw.Query(s.rng.Intn(len(s.nw.Peers)), q)
	if res.Err != nil && !errors.Is(res.Err, squid.ErrPartialResult) {
		return res.Err
	}
	fmt.Printf("%d matches  routing=%d processing=%d data=%d messages=%d  (qid %d; 'trace' renders the tree)\n",
		len(res.Matches), len(qm.RoutingNodes), len(qm.ProcessingNodes), len(qm.DataNodes), qm.Messages(), res.QID)
	if qm.Redispatches > 0 || qm.Abandoned > 0 {
		fmt.Printf("recovery: %d subtree re-dispatches, %d abandoned\n", qm.Redispatches, qm.Abandoned)
	}
	if res.Err != nil {
		fmt.Printf("PARTIAL result: %v\n", res.Err)
	}
	printMatches(res.Matches)
	return nil
}

func (s *session) keywords(words []string) error {
	if len(words) == 0 {
		return fmt.Errorf("usage: keywords <w1> [w2..]")
	}
	p := s.nw.Peers[s.rng.Intn(len(s.nw.Peers))]
	ch := make(chan squid.Result, 1)
	if err := p.Node.Invoke(func() {
		p.Engine.QueryKeywords(words, func(r squid.Result) { ch <- r })
	}); err != nil {
		return fmt.Errorf("query via dead peer %s: %w", p.Addr(), err)
	}
	res := <-ch
	s.nw.Quiesce()
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("%d matches\n", len(res.Matches))
	printMatches(res.Matches)
	return nil
}

func (s *session) trace(args []string) error {
	var (
		t  telemetry.Trace
		ok bool
	)
	if len(args) > 0 {
		qid, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("trace: bad query id %q", args[0])
		}
		t, ok = s.nw.Traces.Get(telemetry.QueryID(qid))
	} else {
		t, ok = s.nw.Traces.Last()
	}
	if !ok {
		return fmt.Errorf("no trace recorded (run a query first)")
	}
	t.Render(os.Stdout)
	return nil
}

func printMatches(ms []squid.Element) {
	for i, m := range ms {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(ms)-10)
			return
		}
		fmt.Printf("  %-28s %v\n", m.Data, m.Values)
	}
}

func (s *session) join(args []string) error {
	var id chord.ID
	if len(args) > 0 {
		v, err := strconv.ParseUint(args[0], 16, 64)
		if err != nil {
			return err
		}
		id = chord.ID(v)
	} else {
		id = chord.ID(s.rng.Uint64() & ((uint64(1) << s.nw.Space.IndexBits()) - 1))
	}
	p, err := s.nw.AddPeer(id)
	if err != nil {
		return err
	}
	fmt.Printf("peer %016x joined (%d peers now)\n", uint64(p.ID()), len(s.nw.Peers))
	return nil
}

func (s *session) leave(args []string, kill bool) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s <peer-index>", map[bool]string{true: "kill", false: "leave"}[kill])
	}
	i, err := strconv.Atoi(args[0])
	if err != nil || i < 0 || i >= len(s.nw.Peers) {
		return fmt.Errorf("peer index out of range (0..%d)", len(s.nw.Peers)-1)
	}
	id := s.nw.Peers[i].ID()
	if kill {
		s.nw.KillPeer(i)
		fmt.Printf("peer %016x failed abruptly; run 'stabilize' to heal\n", uint64(id))
	} else {
		s.nw.RemovePeer(i)
		fmt.Printf("peer %016x left gracefully\n", uint64(id))
	}
	return nil
}

func atoiDefault(args []string, i, def int) int {
	if i < len(args) {
		if v, err := strconv.Atoi(args[i]); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
