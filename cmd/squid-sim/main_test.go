package main

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSessionExec(t *testing.T) {
	s := &session{backend: "goroutine", rng: rand.New(rand.NewSource(1))}
	// Commands before build must fail (except build/help).
	if err := s.exec("query (a, *)"); err == nil {
		t.Error("query before build should fail")
	}
	if err := s.exec("help"); err != nil {
		t.Error("help should always work")
	}
	steps := []string{
		"build 20",
		"load 1000",
		"publish alpha,beta demo-doc",
		"query (alpha, *)",
		"keywords alpha",
		"join",
		"stabilize 2",
		"kill 3",
		"stabilize 4",
		"verify",
		"loads",
		"peers",
		"balance 2",
		"crash 2",
		"restart 2",
		"faults 0",
		"stats",
	}
	for _, cmd := range steps {
		if err := s.exec(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	for _, bad := range []string{
		"build", "load", "load x", "publish", "query", "keywords",
		"leave", "leave 999", "kill abc", "nonsense",
		"faults", "faults 2", "crash", "crash 99", "restart -1",
		"scale", "scale 1",
	} {
		if err := s.exec(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
	if !strings.Contains(helpText, "query") || !strings.Contains(helpText, "scale") {
		t.Error("help text incomplete")
	}
}

// TestSessionExecDES drives the same command set through the discrete-event
// backend: every REPL command except balance (goroutine-only) must work
// identically, and the scale command must run its planet-scale storm.
func TestSessionExecDES(t *testing.T) {
	s := &session{backend: "des", rng: rand.New(rand.NewSource(1))}
	steps := []string{
		"build 20",
		"load 1000",
		"publish alpha,beta demo-doc",
		"query (alpha, *)",
		"keywords alpha",
		"join",
		"stabilize 2",
		"kill 3",
		"stabilize 4",
		"verify",
		"loads",
		"peers",
		"check",
		"crash 2",
		"restart 2",
		"faults 0",
		"stats",
		"trace",
		"scale 300 50",
	}
	for _, cmd := range steps {
		if err := s.exec(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if err := s.exec("balance 2"); err == nil {
		t.Error("balance should be rejected on the des backend")
	}
}
