// Command squid-lint runs the squid analyzer suite — the machine-checked
// correctness invariants of this codebase — over the given packages.
//
// Usage:
//
//	go run ./cmd/squid-lint [-tests] [-list] [-time] [-only name] [packages ...]
//	go run ./cmd/squid-lint -allocs [packages ...]
//	go run ./cmd/squid-lint -allows
//
// Packages default to ./... (every package in the module). Patterns may be
// module-relative directories (./internal/sfc) or import paths
// (squid/internal/sfc). The exit status is 1 when any finding is reported,
// 2 on usage or load errors, 0 on a clean tree.
//
// The suite (see internal/analysis and DESIGN.md §4e/§4j):
//
//	ringcmp       relational operators on ring identifier types
//	scratchalias  retained/clobbered slices from the sfc ...Into APIs
//	nondet        wall clock / global rand in determinism-critical packages
//	rpcerr        silently dropped errors on the transport/chord RPC path
//	wirecodec     binary codec registration and framing discipline
//	confine       //lint:confine fields touched off their owning goroutine
//	lockcheck     //lint:guarded-by fields touched without the mutex held
//	allocfree     allocation constructs on //lint:allocfree hot paths
//
// -allocs runs the escape-analysis gate instead: every //lint:allocfree
// function is checked against `go build -gcflags=-m` output, so a heap
// escape that the static analyzer cannot see (compiler-decided) still
// fails the build. -allows audits every //lint:allow-<analyzer> escape in
// the module, failing on escapes whose analyzer no longer exists or whose
// reason is missing. -time prints per-analyzer wall time to stderr so the
// suite's cost stays visible in CI logs.
//
// Deliberate exceptions are annotated //lint:allow-<analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"squid/internal/analysis"
	"squid/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("squid-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "run only the named analyzer (e.g. ringcmp)")
	timing := fs.Bool("time", false, "print per-analyzer wall time to stderr")
	allocs := fs.Bool("allocs", false, "check //lint:allocfree functions against go build -gcflags=-m escape analysis")
	allows := fs.Bool("allows", false, "audit every //lint:allow-<analyzer> escape in the module")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	if *allows {
		return auditAllows(root, analyzers, stdout, stderr)
	}

	if *only != "" {
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if a.Name == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(stderr, "squid-lint: unknown analyzer %q\n", *only)
			return 2
		}
		analyzers = picked
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests

	paths, err := loader.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "squid-lint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	if *allocs {
		return escapeGate(root, pkgs, stdout, stderr)
	}

	var diags []analysis.Diagnostic
	if *timing {
		for _, a := range analyzers {
			start := time.Now()
			part, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
			if err != nil {
				fmt.Fprintf(stderr, "squid-lint: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "squid-lint: %-14s %8.1fms  %d finding(s)\n",
				a.Name, float64(time.Since(start).Microseconds())/1000, len(part))
			diags = append(diags, part...)
		}
		analysis.SortDiagnostics(diags)
	} else {
		diags, err = analysis.Run(analyzers, pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "squid-lint: %v\n", err)
			return 2
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "squid-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// escapeGate verifies //lint:allocfree functions against the compiler's
// escape analysis: one `go build -gcflags=-m` per package that declares
// annotated functions, diagnostics mapped back onto the function spans.
func escapeGate(root string, pkgs []*analysis.Package, stdout, stderr io.Writer) int {
	var diags []analysis.Diagnostic
	checked := 0
	for _, pkg := range pkgs {
		spans := analysis.CollectAllocSpans(pkg, root)
		if len(spans) == 0 {
			continue
		}
		checked++
		cmd := exec.Command("go", "build", "-gcflags=-m", pkg.Path)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(stderr, "squid-lint: go build -gcflags=-m %s: %v\n%s", pkg.Path, err, out)
			return 2
		}
		diags = append(diags, analysis.EscapeDiagnostics(pkg, root, out)...)
	}
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "squid-lint: %d escape(s) on //lint:allocfree paths in %d package(s)\n", len(diags), checked)
		return 1
	}
	fmt.Fprintf(stderr, "squid-lint: allocfree escape gate clean (%d package(s) with annotations)\n", checked)
	return 0
}

// auditAllows lists every //lint:allow-<analyzer> escape in the module
// with its location and reason, and fails when an escape names an
// analyzer that no longer exists (a stale suppression hides nothing —
// except its own rot) or carries no reason. Files are parsed, not
// text-scanned, so only genuine directive comments count — prose that
// quotes the //lint:allow- form (docs, analyzer messages) does not.
func auditAllows(root string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	bad := 0
	count := 0
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			rel = p
		}
		for _, group := range f.Comments {
			for _, dir := range analysis.GroupDirectives(group) {
				aname, ok := strings.CutPrefix(dir.Name, "allow-")
				if !ok {
					continue
				}
				reason := strings.TrimSpace(dir.Args)
				line := fset.Position(dir.Pos).Line
				count++
				switch {
				case !known[aname]:
					fmt.Fprintf(stderr, "%s:%d: allow-%s: no analyzer by that name (stale escape)\n", rel, line, aname)
					bad++
				case reason == "":
					fmt.Fprintf(stderr, "%s:%d: allow-%s: missing reason\n", rel, line, aname)
					bad++
				default:
					fmt.Fprintf(stdout, "%s:%d: allow-%s: %s\n", rel, line, aname, reason)
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "squid-lint: %d allow escape(s) audited, %d invalid\n", count, bad)
	if bad > 0 {
		return 1
	}
	return 0
}
