// Command squid-lint runs the squid analyzer suite — the machine-checked
// correctness invariants of this codebase — over the given packages.
//
// Usage:
//
//	go run ./cmd/squid-lint [-tests] [-list] [packages ...]
//
// Packages default to ./... (every package in the module). Patterns may be
// module-relative directories (./internal/sfc) or import paths
// (squid/internal/sfc). The exit status is 1 when any finding is reported,
// 2 on usage or load errors, 0 on a clean tree.
//
// The suite (see internal/analysis and DESIGN.md §4e):
//
//	ringcmp       relational operators on ring identifier types
//	scratchalias  retained/clobbered slices from the sfc ...Into APIs
//	nondet        wall clock / global rand in determinism-critical packages
//	rpcerr        silently dropped errors on the transport/chord RPC path
//
// Deliberate exceptions are annotated //lint:allow-<analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"squid/internal/analysis"
	"squid/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("squid-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	only := fs.String("only", "", "run only the named analyzer (e.g. ringcmp)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if a.Name == *only {
				picked = append(picked, a)
			}
		}
		if len(picked) == 0 {
			fmt.Fprintf(stderr, "squid-lint: unknown analyzer %q\n", *only)
			return 2
		}
		analyzers = picked
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	loader.IncludeTests = *tests

	paths, err := loader.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "squid-lint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "squid-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "squid-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
