package main

import (
	"strings"
	"testing"
)

// TestTreeIsLintClean is the regression net for every fix and annotation
// squid-lint forced: the whole module must stay finding-free. It is the
// same invocation CI's squid-lint gate runs.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("squid-lint ./... exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"ringcmp", "scratchalias", "nondet", "rpcerr"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("-only nosuch exit %d, want 2", code)
	}
}

// TestSingleAnalyzerOnCleanPackage exercises -only over one package — the
// cheap smoke path.
func TestSingleAnalyzerOnCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "ringcmp", "./internal/stats"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errOut.String())
	}
}
