package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeIsLintClean is the regression net for every fix and annotation
// squid-lint forced: the whole module must stay finding-free. It is the
// same invocation CI's squid-lint gate runs.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("squid-lint ./... exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{
		"ringcmp", "scratchalias", "nondet", "rpcerr",
		"wirecodec", "confine", "lockcheck", "allocfree",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("-only nosuch exit %d, want 2", code)
	}
}

// TestSingleAnalyzerOnCleanPackage exercises -only over one package — the
// cheap smoke path.
func TestSingleAnalyzerOnCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-only", "ringcmp", "./internal/stats"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errOut.String())
	}
}

// TestTimingFlag runs the analyzers individually and reports per-analyzer
// wall time; findings and exit code must match the merged run.
func TestTimingFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-time", "-only", "ringcmp", "./internal/stats"}, &out, &errOut); code != 0 {
		t.Fatalf("-time exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "ringcmp") {
		t.Errorf("-time stderr missing per-analyzer line:\n%s", errOut.String())
	}
}

// writeModule lays out a throwaway module and chdirs into it, so run()
// resolves it as the module under analysis.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

// TestFindingsExitOne seeds a lockcheck violation in a scratch module and
// checks the driver reports it with exit code 1.
func TestFindingsExitOne(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"a.go": `package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int //lint:guarded-by mu
}

func Bad(s *S) int { return s.n }
`,
	})
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "without holding mu") {
		t.Errorf("missing lockcheck finding:\n%s", out.String())
	}
}

// TestAllowsAuditClean runs the escape audit over this repository: every
// committed //lint:allow-<analyzer> must name a live analyzer and carry a
// reason.
func TestAllowsAuditClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-allows"}, &out, &errOut); code != 0 {
		t.Fatalf("-allows exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "allow-") {
		t.Errorf("-allows listed no escapes (expected the repo's committed allows):\n%s", out.String())
	}
}

// TestAllowsAuditStale fails the audit on an escape naming a dead
// analyzer and on one missing its reason.
func TestAllowsAuditStale(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"a.go": `package a

//lint:allow-nosuchanalyzer suppressing a ghost
var A = 1

//lint:allow-ringcmp
var B = 2
`,
	})
	var out, errOut strings.Builder
	code := run([]string{"-allows"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-allows exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "no analyzer by that name") {
		t.Errorf("stale escape not reported:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "missing reason") {
		t.Errorf("reasonless escape not reported:\n%s", errOut.String())
	}
}

// TestAllocsGateFailsOnEscape plants a heap allocation inside a
// //lint:allocfree function and checks the escape gate (which shells out
// to go build -gcflags=-m) catches it.
func TestAllocsGateFailsOnEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the compiler")
	}
	writeModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"a.go": `package a

//lint:allocfree
func Hot(n int) []int {
	return make([]int, n)
}
`,
	})
	var out, errOut strings.Builder
	code := run([]string{"-allocs", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-allocs exit %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "escapes to heap") {
		t.Errorf("missing escape diagnostic:\n%s", out.String())
	}
}

// TestAllocsGateCleanModule checks exit 0 and the clean summary when every
// annotated function passes escape analysis.
func TestAllocsGateCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the compiler")
	}
	writeModule(t, map[string]string{
		"go.mod": "module tmp\n\ngo 1.22\n",
		"a.go": `package a

var sink [8]byte

//lint:allocfree
func Hot(b byte) {
	sink[0] = b
}
`,
	})
	var out, errOut strings.Builder
	if code := run([]string{"-allocs", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-allocs exit %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "escape gate clean") {
		t.Errorf("missing clean summary:\n%s", errOut.String())
	}
}
