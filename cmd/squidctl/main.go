// Command squidctl is the client for live squid-node rings:
//
//	squidctl -node 127.0.0.1:7001 publish -values "computer,network" -data report.pdf
//	squidctl -node 127.0.0.1:7001 query "(comp*, *)"
//	squidctl -node 127.0.0.1:7001 status
//
// Against a node started with -http, it also reads telemetry:
//
//	squidctl -http 127.0.0.1:8080 metrics
//	squidctl -http 127.0.0.1:8080 trace          # list recorded traces
//	squidctl -http 127.0.0.1:8080 trace 42       # render one query tree
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"squid/internal/chord"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

func main() {
	var (
		node     = flag.String("node", "127.0.0.1:7001", "address of any ring member")
		httpAddr = flag.String("http", "127.0.0.1:8080", "telemetry HTTP address of a node started with -http")
		timeout  = flag.Duration("timeout", 10*time.Second, "reply timeout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: squidctl -node ADDR {publish -values a,b [-data NAME] | unpublish -values a,b [-data NAME] | query [-limit K] QUERY | status}\n")
		fmt.Fprintf(os.Stderr, "       squidctl -http ADDR {metrics | trace [QID]}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "metrics", "trace":
		err = runHTTP(*httpAddr, *timeout, args)
	default:
		err = run(transport.Addr(*node), *timeout, args)
	}
	if err != nil {
		log.Fatalf("squidctl: %v", err)
	}
}

// runHTTP serves the telemetry subcommands against a node's -http endpoint.
func runHTTP(addr string, timeout time.Duration, args []string) error {
	cl := &http.Client{Timeout: timeout}
	get := func(path string) ([]byte, error) {
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
		}
		return body, nil
	}

	switch args[0] {
	case "metrics":
		body, err := get("/metrics")
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil

	case "trace":
		if len(args) < 2 {
			body, err := get("/traces")
			if err != nil {
				return err
			}
			var list []struct {
				QID     uint64 `json:"qid"`
				Partial bool   `json:"partial"`
				Spans   int    `json:"spans"`
				Matches int    `json:"matches"`
				Nodes   int    `json:"nodes"`
			}
			if err := json.Unmarshal(body, &list); err != nil {
				return fmt.Errorf("decode /traces: %w", err)
			}
			if len(list) == 0 {
				fmt.Println("no traces recorded")
				return nil
			}
			fmt.Printf("%-20s %8s %8s %8s %s\n", "QID", "SPANS", "NODES", "MATCHES", "STATUS")
			for _, t := range list {
				status := "complete"
				if t.Partial {
					status = "partial"
				}
				fmt.Printf("%-20d %8d %8d %8d %s\n", t.QID, t.Spans, t.Nodes, t.Matches, status)
			}
			return nil
		}
		qid, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("trace: bad query id %q", args[1])
		}
		body, err := get("/trace?id=" + strconv.FormatUint(qid, 10))
		if err != nil {
			return err
		}
		var t telemetry.Trace
		if err := json.Unmarshal(body, &t); err != nil {
			return fmt.Errorf("decode /trace: %w", err)
		}
		t.Render(os.Stdout)
		return nil

	default:
		return fmt.Errorf("unknown telemetry command %q", args[0])
	}
}

// client is a minimal transport handler collecting replies.
type client struct {
	results chan any
}

func (c *client) Deliver(from transport.Addr, msg any) {
	if m, ok := msg.(chord.AppMsg); ok {
		msg = m.Payload
	}
	select {
	case c.results <- msg:
	default:
	}
}

func run(node transport.Addr, timeout time.Duration, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing command (want publish, query or status)")
	}
	cl := &client{results: make(chan any, 4)}
	ep, err := transport.ListenTCP("127.0.0.1:0", cl)
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }() // exit path: a failed detach has no consumer

	switch args[0] {
	case "publish":
		fs := flag.NewFlagSet("publish", flag.ExitOnError)
		values := fs.String("values", "", "comma-separated keyword values")
		data := fs.String("data", "", "payload name")
		fs.Parse(args[1:])
		if *values == "" {
			return fmt.Errorf("publish: -values required")
		}
		var vals []string
		for _, v := range strings.Split(*values, ",") {
			vals = append(vals, strings.TrimSpace(v))
		}
		msg := chord.AppMsg{From: ep.Addr(), Payload: squid.ClientPublishMsg{
			Elem: squid.Element{Values: vals, Data: *data},
		}}
		if err := ep.Send(node, msg); err != nil {
			return err
		}
		fmt.Printf("published %v via %s\n", vals, node)
		// Give the frame time to flush before closing the connection.
		time.Sleep(100 * time.Millisecond)
		return nil

	case "unpublish":
		fs := flag.NewFlagSet("unpublish", flag.ExitOnError)
		values := fs.String("values", "", "comma-separated keyword values")
		data := fs.String("data", "", "payload name")
		fs.Parse(args[1:])
		if *values == "" {
			return fmt.Errorf("unpublish: -values required")
		}
		var vals []string
		for _, v := range strings.Split(*values, ",") {
			vals = append(vals, strings.TrimSpace(v))
		}
		msg := chord.AppMsg{From: ep.Addr(), Payload: squid.ClientUnpublishMsg{
			Elem: squid.Element{Values: vals, Data: *data},
		}}
		if err := ep.Send(node, msg); err != nil {
			return err
		}
		fmt.Printf("unpublished %v via %s\n", vals, node)
		time.Sleep(100 * time.Millisecond)
		return nil

	case "query":
		fs := flag.NewFlagSet("query", flag.ExitOnError)
		limit := fs.Int("limit", 0, "stop after this many matches (top-k early termination; 0 = all)")
		fs.Parse(args[1:])
		if fs.NArg() < 1 {
			return fmt.Errorf("query: missing query string")
		}
		q := strings.Join(fs.Args(), " ")
		msg := chord.AppMsg{From: ep.Addr(), Payload: squid.ClientQueryMsg{
			Query: q, ReplyTo: ep.Addr(), Token: uint64(time.Now().UnixNano()), Limit: *limit,
		}}
		if err := ep.Send(node, msg); err != nil {
			return err
		}
		select {
		case got := <-cl.results:
			res, ok := got.(squid.ClientResultMsg)
			if !ok {
				return fmt.Errorf("unexpected reply %T", got)
			}
			if res.Err != "" {
				return fmt.Errorf("query failed: %s", res.Err)
			}
			fmt.Printf("%d matches for %s (query id %d)\n", len(res.Matches), q, res.QID)
			for _, m := range res.Matches {
				fmt.Printf("  %-24s %v\n", m.Data, m.Values)
			}
			return nil
		case <-time.After(timeout):
			return fmt.Errorf("no reply from %s within %v", node, timeout)
		}

	case "status":
		if err := ep.Send(node, chord.GetStateMsg{Token: 1, ReplyTo: ep.Addr()}); err != nil {
			return err
		}
		select {
		case got := <-cl.results:
			st, ok := got.(chord.StateMsg)
			if !ok {
				return fmt.Errorf("unexpected reply %T", got)
			}
			fmt.Printf("node   %s\n", st.Self)
			fmt.Printf("pred   %s\n", st.Pred)
			for i, s := range st.Succs {
				fmt.Printf("succ%d  %s\n", i, s)
			}
			fmt.Printf("load   %d keys\n", st.Load)
			return nil
		case <-time.After(timeout):
			return fmt.Errorf("no reply from %s within %v", node, timeout)
		}

	default:
		return fmt.Errorf("unknown command %q (want publish, unpublish, query or status)", args[0])
	}
}
