package main

import (
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if err := run("127.0.0.1:1", time.Second, nil); err == nil {
		// nil args handled by main's usage path; run requires >=1 arg.
		t.Skip("run called with empty args is guarded in main")
	}
	if err := run("127.0.0.1:1", time.Second, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run("127.0.0.1:1", time.Second, []string{"publish"}); err == nil {
		t.Error("publish without -values should fail")
	}
	if err := run("127.0.0.1:1", time.Second, []string{"query"}); err == nil {
		t.Error("query without a query string should fail")
	}
	// Status against a dead port times out or fails to send.
	if err := run("127.0.0.1:1", 300*time.Millisecond, []string{"status"}); err == nil {
		t.Error("status against dead node should fail")
	}
}
