// Command squid-node runs one Squid peer over TCP: the same engine the
// simulator drives, attached to a real network endpoint.
//
// Start a ring:
//
//	squid-node -listen 127.0.0.1:7001 -create
//
// Join it:
//
//	squid-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// All peers of one ring must agree on -dims and -bits. Interact with the
// ring using squidctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/transport"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "address to listen on")
		create     = flag.Bool("create", false, "create a new ring")
		join       = flag.String("join", "", "address of a ring member to join through")
		dims       = flag.Int("dims", 2, "keyword space dimensionality")
		bits       = flag.Int("bits", 32, "bits per keyword dimension")
		id         = flag.Uint64("id", 0, "node identifier (0: random)")
		stabilize  = flag.Duration("stabilize", 2*time.Second, "stabilization interval")
		state      = flag.String("state", "", "path for persisted store state (loaded at start, saved on exit)")
		replicas   = flag.Int("replicas", 0, "successor replicas kept per stored item")
		rpcRetries = flag.Int("rpc-retries", 3, "retries per failed ring RPC (0: fail fast)")
		rpcBackoff = flag.Duration("rpc-backoff", 100*time.Millisecond, "delay before the first RPC retry (doubles per retry, jittered)")
	)
	flag.Parse()
	if err := run(*listen, *create, *join, *dims, *bits, *id, *stabilize, *state, *replicas, *rpcRetries, *rpcBackoff); err != nil {
		log.Fatalf("squid-node: %v", err)
	}
}

func run(listen string, create bool, join string, dims, bits int, id uint64, stabilizeEvery time.Duration, statePath string, replicas, rpcRetries int, rpcBackoff time.Duration) error {
	if create == (join != "") {
		return fmt.Errorf("pass exactly one of -create or -join")
	}
	space, err := keyspace.NewWordSpace(dims, bits)
	if err != nil {
		return err
	}
	ring := chord.Space{Bits: space.IndexBits()}
	if id == 0 {
		id = rand.New(rand.NewSource(time.Now().UnixNano())).Uint64() & ring.Mask()
	}

	eng := squid.NewEngine(space, squid.Options{
		Replicas: replicas,
		// Over a real network queries must degrade, not hang: lost subtrees
		// are re-dispatched and eventually surfaced as partial results.
		SubtreeTimeout: 5 * time.Second,
		QueryDeadline:  60 * time.Second,
	})
	node := chord.NewNode(chord.Config{
		Space:      ring,
		RPCTimeout: 5 * time.Second,
		RPCRetries: rpcRetries,
		RPCBackoff: rpcBackoff,
	}, chord.ID(id), eng)
	eng.Attach(node)

	ep, err := transport.ListenTCP(listen, node)
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }() // exit path: a failed detach has no consumer
	node.Start(ep)

	log.Printf("squid-node %x listening on %s (%d-D keyword space, %d-bit axes)",
		uint64(node.Self().ID), ep.Addr(), dims, bits)

	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			loadErr := eng.LoadState(f)
			f.Close()
			if loadErr != nil {
				return fmt.Errorf("load state %s: %w", statePath, loadErr)
			}
			log.Printf("loaded persisted state from %s", statePath)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	if create {
		if err := node.Invoke(node.Create); err != nil {
			return err
		}
		log.Printf("created new ring")
	} else {
		done := make(chan error, 1)
		if err := node.Invoke(func() {
			node.Join(transport.Addr(join), func(err error) { done <- err })
		}); err != nil {
			return err
		}
		if err := <-done; err != nil {
			return fmt.Errorf("join via %s: %w", join, err)
		}
		log.Printf("joined ring via %s", join)
		if statePath != "" {
			if err := node.Invoke(func() {
				if n := eng.ReconcileOwnership(); n > 0 {
					log.Printf("re-routed %d restored items to their current owners", n)
				}
				if replicas > 0 {
					eng.PushReplicas()
				}
			}); err != nil {
				return fmt.Errorf("reconcile restored state: %w", err)
			}
		}
	}

	ticker := time.NewTicker(stabilizeEvery)
	defer ticker.Stop()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			if err := node.Invoke(func() {
				node.CheckPredecessor()
				node.Stabilize()
				node.FixFingers()
				// Re-push replicas every round so successor-list changes
				// (joins, failures) restore the replication factor before
				// the next fault can strike.
				if replicas > 0 {
					eng.PushReplicas()
				}
			}); err != nil {
				return fmt.Errorf("stabilize tick: endpoint lost: %w", err)
			}
		case s := <-sigc:
			log.Printf("received %v: leaving ring", s)
			if statePath != "" {
				saveState(node, eng, statePath)
			}
			left := make(chan struct{})
			if err := node.Invoke(func() {
				node.Leave()
				close(left)
			}); err != nil {
				log.Printf("leave: endpoint already gone: %v", err)
				close(left) // nothing to wait for; fall through to the timeout select
			}
			select {
			case <-left:
			case <-time.After(3 * time.Second):
			}
			return nil
		}
	}
}

// saveState snapshots the engine's store to disk (atomically via a temp
// file).
func saveState(node *chord.Node, eng *squid.Engine, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("save state: %v", err)
		return
	}
	done := make(chan error, 1)
	if ierr := node.Invoke(func() { done <- eng.SaveState(f) }); ierr != nil {
		done <- ierr // endpoint gone: report it as the save outcome instead of deadlocking below
	}
	err = <-done
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		log.Printf("save state: %v", err)
		os.Remove(tmp)
		return
	}
	log.Printf("state saved to %s", path)
}
