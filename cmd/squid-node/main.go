// Command squid-node runs one Squid peer over TCP: the same engine the
// simulator drives, attached to a real network endpoint.
//
// Start a ring:
//
//	squid-node -listen 127.0.0.1:7001 -create
//
// Join it:
//
//	squid-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// All peers of one ring must agree on -dims and -bits. Interact with the
// ring using squidctl.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
)

// config carries every squid-node flag.
type config struct {
	listen     string
	create     bool
	join       string
	dims, bits int
	id         uint64
	stabilize  time.Duration
	statePath  string
	replicas   int
	rpcRetries int
	rpcBackoff time.Duration
	httpAddr   string
	workers    int
	inflight   int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:0", "address to listen on")
	flag.BoolVar(&cfg.create, "create", false, "create a new ring")
	flag.StringVar(&cfg.join, "join", "", "address of a ring member to join through")
	flag.IntVar(&cfg.dims, "dims", 2, "keyword space dimensionality")
	flag.IntVar(&cfg.bits, "bits", 32, "bits per keyword dimension")
	flag.Uint64Var(&cfg.id, "id", 0, "node identifier (0: random)")
	flag.DurationVar(&cfg.stabilize, "stabilize", 2*time.Second, "stabilization interval")
	flag.StringVar(&cfg.statePath, "state", "", "path for persisted store state (loaded at start, saved on exit)")
	flag.IntVar(&cfg.replicas, "replicas", 0, "successor replicas kept per stored item")
	flag.IntVar(&cfg.rpcRetries, "rpc-retries", 3, "retries per failed ring RPC (0: fail fast)")
	flag.DurationVar(&cfg.rpcBackoff, "rpc-backoff", 100*time.Millisecond, "delay before the first RPC retry (doubles per retry, jittered)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve telemetry over HTTP on this address: /metrics, /traces, /trace?id=N (empty: disabled)")
	flag.IntVar(&cfg.workers, "workers", 0, "query scheduler worker pool size (0: GOMAXPROCS clamped to [2,8]; negative: serial processing)")
	flag.IntVar(&cfg.inflight, "max-inflight", 0, "refinement jobs admitted before the node sheds load (0: 16x workers, min 64)")
	flag.Parse()
	if err := run(cfg); err != nil {
		log.Fatalf("squid-node: %v", err)
	}
}

func run(cfg config) error {
	if cfg.create == (cfg.join != "") {
		return fmt.Errorf("pass exactly one of -create or -join")
	}
	space, err := keyspace.NewWordSpace(cfg.dims, cfg.bits)
	if err != nil {
		return err
	}
	ring := chord.Space{Bits: space.IndexBits()}
	id := cfg.id
	if id == 0 {
		id = rand.New(rand.NewSource(time.Now().UnixNano())).Uint64() & ring.Mask()
	}

	reg := telemetry.NewRegistry(time.Now)
	traces := telemetry.NewTraceStore(0)
	// Over a real network queries must degrade, not hang: lost subtrees
	// are re-dispatched and eventually surfaced as partial results.
	engOpts := []squid.Option{
		squid.WithReplication(cfg.replicas),
		squid.WithSubtreeTimeout(5 * time.Second),
		squid.WithQueryDeadline(60 * time.Second),
		squid.WithMaxInflight(cfg.inflight),
		squid.WithTelemetry(reg),
		squid.WithTraces(traces),
	}
	if cfg.workers < 0 {
		engOpts = append(engOpts, squid.WithSerialProcessing())
	} else if cfg.workers > 0 {
		engOpts = append(engOpts, squid.WithWorkers(cfg.workers))
	}
	eng := squid.New(space, engOpts...)
	node := chord.NewNode(chord.Config{
		Space:      ring,
		RPCTimeout: 5 * time.Second,
		RPCRetries: cfg.rpcRetries,
		RPCBackoff: cfg.rpcBackoff,
		Telemetry:  reg,
	}, chord.ID(id), eng)
	eng.Attach(node)

	ep, err := transport.ListenTCP(cfg.listen, node)
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }() // exit path: a failed detach has no consumer
	ep.Instrument(reg)
	node.Start(ep)

	log.Printf("squid-node %x listening on %s (%d-D keyword space, %d-bit axes)",
		uint64(node.Self().ID), ep.Addr(), cfg.dims, cfg.bits)

	if cfg.httpAddr != "" {
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("telemetry listen %s: %w", cfg.httpAddr, err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, telemetry.NewHandler(reg, traces)) }()
		log.Printf("telemetry HTTP on http://%s (/metrics, /traces, /trace?id=N)", ln.Addr())
	}

	if cfg.statePath != "" {
		if f, err := os.Open(cfg.statePath); err == nil {
			loadErr := eng.LoadState(f)
			f.Close()
			if loadErr != nil {
				return fmt.Errorf("load state %s: %w", cfg.statePath, loadErr)
			}
			log.Printf("loaded persisted state from %s", cfg.statePath)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	if cfg.create {
		if err := node.Invoke(node.Create); err != nil {
			return err
		}
		log.Printf("created new ring")
	} else {
		done := make(chan error, 1)
		if err := node.Invoke(func() {
			node.Join(transport.Addr(cfg.join), func(err error) { done <- err })
		}); err != nil {
			return err
		}
		if err := <-done; err != nil {
			return fmt.Errorf("join via %s: %w", cfg.join, err)
		}
		log.Printf("joined ring via %s", cfg.join)
		if cfg.statePath != "" {
			if err := node.Invoke(func() {
				if n := eng.ReconcileOwnership(); n > 0 {
					log.Printf("re-routed %d restored items to their current owners", n)
				}
				if cfg.replicas > 0 {
					eng.PushReplicas()
				}
			}); err != nil {
				return fmt.Errorf("reconcile restored state: %w", err)
			}
		}
	}

	ticker := time.NewTicker(cfg.stabilize)
	defer ticker.Stop()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			if err := node.Invoke(func() {
				node.CheckPredecessor()
				node.Stabilize()
				node.FixFingers()
				// Re-push replicas every round so successor-list changes
				// (joins, failures) restore the replication factor before
				// the next fault can strike.
				if cfg.replicas > 0 {
					eng.PushReplicas()
				}
			}); err != nil {
				return fmt.Errorf("stabilize tick: endpoint lost: %w", err)
			}
		case s := <-sigc:
			log.Printf("received %v: leaving ring", s)
			if cfg.statePath != "" {
				saveState(node, eng, cfg.statePath)
			}
			left := make(chan struct{})
			if err := node.Invoke(func() {
				node.Leave()
				close(left)
			}); err != nil {
				log.Printf("leave: endpoint already gone: %v", err)
				close(left) // nothing to wait for; fall through to the timeout select
			}
			select {
			case <-left:
			case <-time.After(3 * time.Second):
			}
			return nil
		}
	}
}

// saveState snapshots the engine's store to disk (atomically via a temp
// file).
func saveState(node *chord.Node, eng *squid.Engine, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("save state: %v", err)
		return
	}
	done := make(chan error, 1)
	if ierr := node.Invoke(func() { done <- eng.SaveState(f) }); ierr != nil {
		done <- ierr // endpoint gone: report it as the save outcome instead of deadlocking below
	}
	err = <-done
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		log.Printf("save state: %v", err)
		os.Remove(tmp)
		return
	}
	log.Printf("state saved to %s", path)
}
