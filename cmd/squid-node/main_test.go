package main

import (
	"os"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	base := config{listen: "127.0.0.1:0", dims: 2, bits: 32, stabilize: time.Second}

	// Neither -create nor -join.
	if err := run(base); err == nil {
		t.Error("missing create/join should fail")
	}
	// Both.
	both := base
	both.create, both.join = true, "127.0.0.1:9"
	if err := run(both); err == nil {
		t.Error("create+join should fail")
	}
	// Bad geometry.
	bad := base
	bad.create, bad.dims = true, 0
	if err := run(bad); err == nil {
		t.Error("bad dims should fail")
	}
	// Unreachable seed fails the join.
	unreach := base
	unreach.join, unreach.id = "127.0.0.1:1", 7
	if err := run(unreach); err == nil {
		t.Error("unreachable seed should fail")
	}
	// A bad telemetry address fails before serving starts.
	badHTTP := base
	badHTTP.create, badHTTP.httpAddr = true, "256.0.0.1:bad"
	if err := run(badHTTP); err == nil {
		t.Error("bad -http address should fail")
	}
	// A corrupt state file fails the load before serving starts.
	f, err := os.CreateTemp(t.TempDir(), "state")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not a gob stream")
	f.Close()
	corrupt := base
	corrupt.create, corrupt.statePath, corrupt.id = true, f.Name(), 7
	if err := run(corrupt); err == nil {
		t.Error("corrupt state should fail")
	}
}
