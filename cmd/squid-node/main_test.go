package main

import (
	"os"
	"testing"
	"time"
)

func TestRunFlagValidation(t *testing.T) {
	// Neither -create nor -join.
	if err := run("127.0.0.1:0", false, "", 2, 32, 0, time.Second, "", 0, 0, 0); err == nil {
		t.Error("missing create/join should fail")
	}
	// Both.
	if err := run("127.0.0.1:0", true, "127.0.0.1:9", 2, 32, 0, time.Second, "", 0, 0, 0); err == nil {
		t.Error("create+join should fail")
	}
	// Bad geometry.
	if err := run("127.0.0.1:0", true, "", 0, 32, 0, time.Second, "", 0, 0, 0); err == nil {
		t.Error("bad dims should fail")
	}
	// Unreachable seed fails the join.
	if err := run("127.0.0.1:0", false, "127.0.0.1:1", 2, 32, 7, time.Second, "", 0, 0, 0); err == nil {
		t.Error("unreachable seed should fail")
	}
	// A corrupt state file fails the load before serving starts.
	f, err := os.CreateTemp(t.TempDir(), "state")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not a gob stream")
	f.Close()
	if err := run("127.0.0.1:0", true, "", 2, 32, 7, time.Second, f.Name(), 0, 0, 0); err == nil {
		t.Error("corrupt state should fail")
	}
}
