package main

// The -sched-json harness: a concurrent-load benchmark for the query
// scheduler (BENCH_2.json). It drives the same overlay twice — once with
// serial in-delivery-goroutine refinement (the pre-scheduler engine) and
// once with the worker pool plus admission control — under an open-loop
// burst workload of deadline-bounded queries, and reports goodput
// (queries completed within their deadline per second of system busy
// time), latency percentiles, overload sheds, and the solo single-query
// latency the scheduler must not regress.
//
// The serial engine admits everything and refines on the delivery
// goroutine, so under overload queued queries burn CPU past their
// deadlines and are cancelled after the fact: offered work is wasted.
// The scheduled engine sheds what it cannot finish (ErrOverloaded,
// costing ~nothing) and keeps the delivery goroutine responsive, so the
// queries it does admit complete inside their deadlines.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

type schedLoadResult struct {
	Offered      int     `json:"offered"`
	Completed    int     `json:"completed"`
	Shed         int     `json:"shed"`
	Partial      int     `json:"partial"`
	DeadlineMiss int     `json:"deadline_missed"`
	WallSeconds  float64 `json:"wall_seconds"`
	GoodputQPS   float64 `json:"goodput_qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	SoloMs       float64 `json:"solo_ms"`
}

type schedSnapshot struct {
	Generated       string          `json:"generated"`
	Go              string          `json:"go"`
	Nodes           int             `json:"nodes"`
	Keys            int             `json:"keys"`
	Burst           int             `json:"burst"`
	DeadlineMs      float64         `json:"deadline_ms"`
	Workers         int             `json:"workers"`
	MaxInflight     int             `json:"max_inflight"`
	Serial          schedLoadResult `json:"serial"`
	Scheduled       schedLoadResult `json:"scheduled"`
	GoodputSpeedup  float64         `json:"goodput_speedup"`
	SoloOverheadPct float64         `json:"solo_overhead_pct"`
}

// schedBenchWord draws a short word; the alphabet-skewed first letter
// mirrors the soak corpus so query breadths span cheap to expensive.
func schedBenchWord(rng *rand.Rand) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	n := 3 + rng.Intn(4)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func schedBenchNetwork(space *keyspace.Space, nodes int, elems []squid.Element, opts squid.Options) (*sim.Network, error) {
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: 9001, Engine: opts})
	if err != nil {
		return nil, err
	}
	if err := nw.Preload(elems); err != nil {
		return nil, err
	}
	return nw, nil
}

// soloOnce runs one query alone on an otherwise idle network and returns
// its end-to-end latency.
func soloOnce(nw *sim.Network, via int, q keyspace.Query) (time.Duration, error) {
	p := nw.Peers[via%len(nw.Peers)]
	done := make(chan error, 1)
	start := time.Now()
	sim.MustInvoke(p, func() {
		p.Engine.Query(q, func(r squid.Result) { done <- r.Err })
	})
	if err := <-done; err != nil {
		return 0, fmt.Errorf("solo query: %w", err)
	}
	return time.Since(start), nil
}

// soloLatencies measures the two engines' single-query latencies with
// interleaved repetitions — alternating nets each rep AND alternating
// which net goes first, so allocator drift, GC pauses, and cache-warmth
// ordering effects hit both sides equally — and returns each side's
// median.
func soloLatencies(a, b *sim.Network, q keyspace.Query, reps int) (time.Duration, time.Duration, error) {
	runtime.GC()
	la := make([]time.Duration, 0, reps)
	lb := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		first, second := a, b
		if i%2 == 1 {
			first, second = b, a
		}
		d1, err := soloOnce(first, i, q)
		if err != nil {
			return 0, 0, err
		}
		d2, err := soloOnce(second, i, q)
		if err != nil {
			return 0, 0, err
		}
		if first == a {
			la, lb = append(la, d1), append(lb, d2)
		} else {
			la, lb = append(la, d2), append(lb, d1)
		}
	}
	sort.Slice(la, func(i, j int) bool { return la[i] < la[j] })
	sort.Slice(lb, func(i, j int) bool { return lb[i] < lb[j] })
	return la[len(la)/2], lb[len(lb)/2], nil
}

// runSchedLoad offers `offered` deadline-bounded queries as a storm of
// back-to-back bursts of `burst` — an arrival spike far above capacity,
// submitted without pacing because on one CPU a paced client competes
// with the system under test and silently self-throttles to its
// capacity. Each burst lands on one peer's delivery goroutine in a
// single turn — the worst case for head-of-line blocking, and the
// deterministic case for admission control. Latency runs from the
// client's submit instant, so delivery-queue wait counts; a query is
// goodput only if its full result arrived within its deadline. The wall
// clock includes the post-load drain: work the system spends on queries
// that already missed their deadlines is part of the cost the serial
// engine pays and the admission-controlled engine refuses.
func runSchedLoad(nw *sim.Network, queries []keyspace.Query, offered, burst int, deadline time.Duration) schedLoadResult {
	type outcome struct {
		latency time.Duration
		err     error
	}
	results := make(chan outcome, offered)
	start := time.Now()
	qi := 0
	for submitted := 0; submitted < offered; submitted += burst {
		n := burst
		if rem := offered - submitted; rem < n {
			n = rem
		}
		p := nw.Peers[(submitted/burst)%len(nw.Peers)]
		qs := make([]keyspace.Query, n)
		for i := range qs {
			qs[i] = queries[qi%len(queries)]
			qi++
		}
		t0 := time.Now() // client submit instant for the whole burst
		sim.MustInvoke(p, func() {
			for _, q := range qs {
				ctx, cancel := context.WithTimeout(context.Background(), deadline)
				_, err := p.Engine.QueryCtx(ctx, q, func(r squid.Result) {
					cancel()
					results <- outcome{latency: time.Since(t0), err: r.Err}
				})
				if err != nil {
					cancel()
					results <- outcome{latency: time.Since(t0), err: err}
				}
			}
		})
	}
	res := schedLoadResult{Offered: offered}
	var lat []time.Duration
	for i := 0; i < offered; i++ {
		out := <-results
		switch {
		case out.err == nil && out.latency <= deadline:
			res.Completed++
			lat = append(lat, out.latency)
		case out.err == nil:
			// Finished, but past its deadline: the cancellation raced the
			// completion. The client stopped waiting — not goodput.
			res.DeadlineMiss++
		case errors.Is(out.err, squid.ErrOverloaded):
			res.Shed++
		case errors.Is(out.err, squid.ErrPartialResult):
			res.Partial++
		default:
			res.DeadlineMiss++
		}
	}
	nw.Quiesce() // trailing subtree work for dead queries is real cost
	wall := time.Since(start)
	res.WallSeconds = wall.Seconds()
	if wall > 0 {
		res.GoodputQPS = float64(res.Completed) / wall.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P50Ms = float64(lat[len(lat)/2].Microseconds()) / 1e3
		res.P99Ms = float64(lat[len(lat)*99/100].Microseconds()) / 1e3
	}
	return res
}

func runSchedJSON(path string) error {
	const (
		nodes    = 8
		keys     = 6000
		offered  = 4000
		burst    = 8
		deadline = 80 * time.Millisecond
		workers  = 2
		inflight = 12
	)
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(9002))
	elems := make([]squid.Element, keys)
	for i := range elems {
		elems[i] = squid.Element{
			Values: []string{schedBenchWord(rng), schedBenchWord(rng)},
			Data:   fmt.Sprintf("doc-%05d", i),
		}
	}
	// Breadth mix: full and one-axis wildcards (expensive, touch most of
	// the ring) against narrow prefixes and ranges (cheap). Under serial
	// refinement the cheap queries queue behind the expensive ones.
	queries := []keyspace.Query{
		keyspace.MustParse("(*, *)"),
		keyspace.MustParse("(a-c, *)"),
		keyspace.MustParse("(ma*, t*)"),
		keyspace.MustParse("(qu*, fo*)"),
		keyspace.MustParse("(*, ba*)"),
		keyspace.MustParse("(do*, re*)"),
		keyspace.MustParse("(k-m, b-d)"),
		keyspace.MustParse("(za*, zo*)"),
	}
	// Narrow enough to bound GC noise, broad enough to touch several
	// nodes' arcs end to end.
	soloQuery := keyspace.MustParse("(a-c, *)")

	serialNet, err := schedBenchNetwork(space, nodes, elems, squid.Options{Workers: -1})
	if err != nil {
		return err
	}
	schedNet, err := schedBenchNetwork(space, nodes, elems, squid.Options{Workers: workers, MaxInflight: inflight})
	if err != nil {
		return err
	}

	serialSolo, schedSolo, err := soloLatencies(serialNet, schedNet, soloQuery, 101)
	if err != nil {
		return err
	}

	fmt.Printf("sched bench: %d nodes, %d keys, a storm of %d queries in bursts of %d, %v deadline\n",
		nodes, keys, offered, burst, deadline)
	serial := runSchedLoad(serialNet, queries, offered, burst, deadline)
	serial.SoloMs = float64(serialSolo.Microseconds()) / 1e3
	fmt.Printf("  serial:    %4d/%d completed, %4d shed, %3d partial, %4d missed deadline, %7.2f qps goodput, p99 %.1fms\n",
		serial.Completed, serial.Offered, serial.Shed, serial.Partial, serial.DeadlineMiss, serial.GoodputQPS, serial.P99Ms)
	sched := runSchedLoad(schedNet, queries, offered, burst, deadline)
	sched.SoloMs = float64(schedSolo.Microseconds()) / 1e3
	fmt.Printf("  scheduled: %4d/%d completed, %4d shed, %3d partial, %4d missed deadline, %7.2f qps goodput, p99 %.1fms\n",
		sched.Completed, sched.Offered, sched.Shed, sched.Partial, sched.DeadlineMiss, sched.GoodputQPS, sched.P99Ms)

	snap := schedSnapshot{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Go:          runtime.Version(),
		Nodes:       nodes,
		Keys:        keys,
		Burst:       burst,
		DeadlineMs:  float64(deadline.Milliseconds()),
		Workers:     workers,
		MaxInflight: inflight,
		Serial:      serial,
		Scheduled:   sched,
	}
	if serial.GoodputQPS > 0 {
		snap.GoodputSpeedup = sched.GoodputQPS / serial.GoodputQPS
	}
	if serial.SoloMs > 0 {
		snap.SoloOverheadPct = (sched.SoloMs - serial.SoloMs) / serial.SoloMs * 100
	}
	fmt.Printf("  goodput speedup %.2fx, solo %.2fms -> %.2fms (%+.1f%%)\n",
		snap.GoodputSpeedup, serial.SoloMs, sched.SoloMs, snap.SoloOverheadPct)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
