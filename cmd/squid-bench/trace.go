package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/transport"
	"squid/internal/workload"
)

// runTraceDemo builds a traced simulated network, runs one flexible query
// under message drops, and renders the reassembled refinement tree — the
// EXPERIMENTS.md observability walkthrough.
func runTraceDemo(nodes, keys int, drop float64) error {
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		return err
	}
	nw, err := sim.Build(sim.Config{
		Nodes: nodes, Space: space, Seed: 1,
		Engine: squid.Options{
			SubtreeTimeout: 150 * time.Millisecond,
			QueryDeadline:  10 * time.Second,
		},
		Chord:  chord.Config{RPCTimeout: 100 * time.Millisecond, RPCRetries: 4},
		Faults: &transport.FaultConfig{Seed: 2, DropRate: drop},
		Trace:  true,
	})
	if err != nil {
		return err
	}
	vocab := workload.NewVocabulary(3, maxOf(200, keys/20), 1.2)
	tuples := workload.KeyTuples(vocab, 4, keys, space.Dims())
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		return err
	}

	qs := "(" + vocab.Words[0][:3] + "*, *)"
	q, err := keyspace.Parse(qs)
	if err != nil {
		return err
	}
	fmt.Printf("traced query %s over %d nodes, %d keys, %.0f%% message drops\n\n",
		qs, nodes, keys, drop*100)
	res, qm := nw.Query(0, q)
	if res.Err != nil && !errors.Is(res.Err, squid.ErrPartialResult) {
		return res.Err
	}

	status := "complete"
	if res.Err != nil {
		status = "PARTIAL: " + res.Err.Error()
	}
	fmt.Printf("%d matches (%s)  processing=%d data=%d messages=%d redispatches=%d\n\n",
		len(res.Matches), status, len(qm.ProcessingNodes), len(qm.DataNodes),
		qm.Messages(), qm.Redispatches)

	t, ok := nw.TraceForQuery(res.QID)
	if !ok {
		return fmt.Errorf("no trace recorded for query %d", res.QID)
	}
	t.Render(os.Stdout)

	fs := nw.Faulty.Stats()
	fmt.Printf("\ntransport: delivered=%d dropped=%d\n", fs.Delivered, fs.Dropped)
	fmt.Println("full metric dump: start a node with 'squid-node -http' and run 'squidctl metrics'")
	return nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
