// Command squid-bench drives the paper's experiments at configurable
// scale, up to the full HPDC'03 setup (1 000-5 400 nodes, 2*10^5-10^6
// keys). It prints the same rows/series each figure reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
//	squid-bench -exp fig9 -factor 0.1     # 10% of paper scale
//	squid-bench -exp all  -factor 0.02    # everything, laptop scale
//	squid-bench -exp fig19 -nodes 200 -keys 40000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"squid/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig9..fig19, a1..a7, or all")
		factor     = flag.Float64("factor", 0.02, "fraction of the paper's scale for fig9-fig17 (1.0 = 1000-5400 nodes, 2e5-1e6 keys)")
		nodes      = flag.Int("nodes", 100, "network size for fig19/a3/a4/a5")
		keys       = flag.Int("keys", 20000, "stored keys for fig18/fig19/a5")
		csv        = flag.String("csv", "", "also write sweep results (fig9-fig17) as CSV to this file")
		benchJSON  = flag.String("bench-json", "", "run the hot-path benchmark suite instead of figures and write the snapshot (BENCH_*.json) to this file")
		schedJSON  = flag.String("sched-json", "", "run the concurrent-load scheduler benchmark (serial vs worker pool under deadline-bounded bursts) and write the snapshot (BENCH_2.json) to this file")
		wireJSON   = flag.String("wire-json", "", "run the wire-codec benchmark (binary vs gob: encode cost, bytes per message, TCP throughput, ring bytes per query) and write the snapshot (BENCH_3.json) to this file")
		desJSON    = flag.String("des-json", "", "run the discrete-event backend's planet-scale sweep (100 to 10000 nodes, full churn+query storms) and write the snapshot (BENCH_4.json) to this file")
		streamJSON = flag.String("stream-json", "", "run the streaming scenarios (top-k early-termination savings, popular-cluster cache hit rate under a Zipf storm) and write the snapshot (BENCH_5.json) to this file")
		traceDemo  = flag.Bool("trace-demo", false, "run one traced query under message drops and render its refinement tree (uses -nodes, -keys, -drop)")
		drop       = flag.Float64("drop", 0.05, "message drop rate for -trace-demo")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("squid-bench: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("squid-bench: cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	err := func() error {
		if *benchJSON != "" {
			return runBenchJSON(*benchJSON, *factor)
		}
		if *schedJSON != "" {
			return runSchedJSON(*schedJSON)
		}
		if *wireJSON != "" {
			return runWireJSON(*wireJSON)
		}
		if *desJSON != "" {
			return runDesJSON(*desJSON)
		}
		if *streamJSON != "" {
			return runStreamJSON(*streamJSON)
		}
		if *traceDemo {
			return runTraceDemo(*nodes, *keys, *drop)
		}
		return run(*exp, *factor, *nodes, *keys, *csv)
	}()
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			log.Fatalf("squid-bench: %v", ferr)
		}
		runtime.GC()
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			log.Fatalf("squid-bench: memprofile: %v", perr)
		}
		f.Close()
	}
	if err != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile() // flush before the non-deferred exit
		}
		log.Fatalf("squid-bench: %v", err)
	}
}

func run(exp string, factor float64, nodes, keys int, csvPath string) error {
	w := os.Stdout
	var csvW io.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvW = f
	}
	type figure struct {
		name string
		fn   func() error
	}
	sweepN := func(name string, fn func(float64, io.Writer) ([]experiments.Point, error)) func() error {
		return func() error {
			pts, err := fn(factor, w)
			if err == nil && csvW != nil {
				experiments.WriteCSV(csvW, name, pts)
			}
			return err
		}
	}
	figures := []figure{
		{"fig9", sweepN("fig9", experiments.Fig09)},
		{"fig10", sweepN("fig10", experiments.Fig10)},
		{"fig11", sweepN("fig11", experiments.Fig11)},
		{"fig12", sweepN("fig12", experiments.Fig12)},
		{"fig13", sweepN("fig13", experiments.Fig13)},
		{"fig14", sweepN("fig14", experiments.Fig14)},
		{"fig15", sweepN("fig15", experiments.Fig15)},
		{"fig16", sweepN("fig16", experiments.Fig16)},
		{"fig17", sweepN("fig17", experiments.Fig17)},
		{"fig18", func() error { _, err := experiments.Fig18(keys, w); return err }},
		{"fig19", func() error { _, err := experiments.Fig19(nodes, keys, w); return err }},
		{"a1", func() error {
			_, err := experiments.AblationAggregation(experiments.Scale{Nodes: nodes, Keys: keys}, w)
			return err
		}},
		{"a2", func() error {
			_, err := experiments.AblationPruning(experiments.Scale{Nodes: nodes, Keys: keys}, w)
			return err
		}},
		{"a3", func() error { _, err := experiments.BaselinesCompare(nodes, keys/2, w); return err }},
		{"a4", func() error { _, err := experiments.BaselineInverseSFC(nodes, keys/2, w); return err }},
		{"a5", func() error { _, err := experiments.AblationLoadBalance(min(nodes, 60), keys/2, w); return err }},
		{"a6", func() error {
			_, err := experiments.AblationCurve(experiments.Scale{Nodes: nodes, Keys: keys}, w)
			return err
		}},
		{"a7", func() error {
			_, err := experiments.AblationHotSpot(experiments.Scale{Nodes: nodes, Keys: keys}, 4, w)
			return err
		}},
	}

	want := strings.ToLower(exp)
	ran := 0
	for _, f := range figures {
		if want != "all" && want != f.name {
			continue
		}
		start := time.Now()
		if err := f.fn(); err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		fmt.Fprintf(w, "(%s done in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
