package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"squid/internal/chord"
	"squid/internal/dessim"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/workload"
)

// The planet-scale regression harness: -des-json runs the discrete-event
// backend's scaling sweep — 10² to 10⁴ nodes, each point the full paper
// experiment (bootstrap, Zipf preload at 4 keys/node, ten invariant-checked
// stabilization rounds, then a 1 000-query churn storm over 5-80 ms lossy
// links) — and writes the snapshot other PRs diff against (BENCH_4.json).
// The 5 000- and 10 000-node points use the exact seed and scale of
// TestDesScale and TestDesPaperScale, so the snapshot's fingerprints
// cross-check the CI acceptance tests bit for bit.

// desPoint is one scale on the curve. Everything except the wall-clock
// fields is a pure function of (nodes, keys, seed): two machines disagree
// only on seconds and events/sec, never on the fingerprint.
type desPoint struct {
	Nodes          int     `json:"nodes"`
	Seed           int64   `json:"seed"`
	Keys           int     `json:"keys"`
	Queries        int     `json:"queries"`
	Complete       int     `json:"complete"`
	Partial        int     `json:"partial"`
	Incomplete     int     `json:"incomplete"`
	Matches        int     `json:"matches"`
	JoinErrs       int     `json:"join_errs"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	VirtualSeconds float64 `json:"virtual_seconds"`
	HardViolations uint64  `json:"hard_ring_violations"`
	Fingerprint    string  `json:"fingerprint"`
}

type desSnapshot struct {
	Generated string     `json:"generated"`
	Go        string     `json:"go"`
	Curve     []desPoint `json:"curve"`
	// PeakEventsPerSec is the throughput headline: the best events/sec
	// across the curve (larger rings amortize per-event overhead better).
	PeakEventsPerSec float64 `json:"peak_events_per_sec"`
}

// desScaleRun is the bench twin of the dessim package's paperScaleRun test
// helper: identical config, error-returning instead of test-failing.
func desScaleRun(nodes, keys int, seed int64) (desPoint, error) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		return desPoint{}, err
	}
	nw, err := dessim.Build(dessim.Config{
		Nodes: nodes,
		Space: space,
		Seed:  seed,
		Net: dessim.NetConfig{
			Seed:       seed + 1,
			MinLatency: 5 * time.Millisecond,
			MaxLatency: 80 * time.Millisecond,
			DropRate:   0.005,
		},
		Chord: chord.Config{
			RPCTimeout: 400 * time.Millisecond,
			RPCRetries: 3,
			RPCBackoff: 10 * time.Millisecond,
		},
		Engine: squid.Options{
			// Must exceed a deep range query's honest completion time or the
			// engine re-dispatches live subtrees; see internal/dessim's
			// scale test for the measured cost of getting this wrong.
			SubtreeTimeout: 8 * time.Second,
			SubtreeRetries: 2,
			QueryDeadline:  2 * time.Minute,
		},
		CheckInvariants: true,
	})
	if err != nil {
		return desPoint{}, err
	}
	vocab := workload.NewVocabulary(seed+2, 2000, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+3, keys, 2))); err != nil {
		return desPoint{}, err
	}
	start := time.Now()
	nw.StabilizeAll(10)
	storm := nw.RunStorm(dessim.StormConfig{
		Seed:            seed + 4,
		Queries:         1000,
		Vocab:           vocab,
		Dims:            2,
		Joins:           25,
		Kills:           25,
		StabilizeRounds: 10,
	})
	nw.CheckRing()
	wall := time.Since(start)
	return desPoint{
		Nodes:          nodes,
		Seed:           seed,
		Keys:           keys,
		Queries:        1000,
		Complete:       storm.Complete,
		Partial:        storm.Partial,
		Incomplete:     storm.Incomplete,
		Matches:        storm.Matches,
		JoinErrs:       storm.JoinErrs,
		Events:         nw.Core.Steps(),
		WallSeconds:    wall.Seconds(),
		EventsPerSec:   float64(nw.Core.Steps()) / wall.Seconds(),
		VirtualSeconds: nw.Core.Elapsed().Seconds(),
		HardViolations: nw.RingViolations(),
		Fingerprint:    fmt.Sprintf("%016x", storm.Fingerprint),
	}, nil
}

func runDesJSON(path string) error {
	snap := desSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	// The 5k and 10k seeds are TestDesScale's and TestDesPaperScale's; the
	// storm's tail cost is seed-sensitive at 10⁴ nodes (a churn schedule can
	// draw ~3× the events of another), so pinning the acceptance-test seeds
	// keeps the snapshot diffable against the tests rather than against an
	// arbitrary draw.
	for _, s := range []struct {
		nodes int
		seed  int64
	}{{100, 9001}, {1000, 9001}, {5000, 9001}, {10000, 9101}} {
		nodes := s.nodes
		pt, err := desScaleRun(nodes, 4*nodes, s.seed)
		if err != nil {
			return fmt.Errorf("des sweep at %d nodes: %w", nodes, err)
		}
		if pt.HardViolations != 0 {
			return fmt.Errorf("des sweep at %d nodes: %d hard ring violations", nodes, pt.HardViolations)
		}
		snap.Curve = append(snap.Curve, pt)
		if pt.EventsPerSec > snap.PeakEventsPerSec {
			snap.PeakEventsPerSec = pt.EventsPerSec
		}
		fmt.Printf("des %6d nodes: %d/%d/%d complete/partial/incomplete, %d matches, %d events in %.1fs (%.0f events/sec, virtual %.0fs) fp=%s\n",
			pt.Nodes, pt.Complete, pt.Partial, pt.Incomplete, pt.Matches,
			pt.Events, pt.WallSeconds, pt.EventsPerSec, pt.VirtualSeconds, pt.Fingerprint)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
