package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 0.01, 10, 100, ""); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunSingleFigureTiny(t *testing.T) {
	if err := run("fig18", 0.01, 10, 2000, ""); err != nil {
		t.Errorf("fig18: %v", err)
	}
	if err := run("a1", 0.01, 30, 2000, ""); err != nil {
		t.Errorf("a1: %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.csv"
	if err := run("fig11", 0.002, 10, 500, path); err != nil {
		t.Fatalf("fig11 with csv: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "figure,nodes,keys,query") {
		t.Errorf("csv header missing:\n%s", s[:80])
	}
	if !strings.Contains(s, "fig11,") {
		t.Errorf("csv rows missing")
	}
}
