package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"squid/internal/experiments"
	"squid/internal/sfc"
)

// The bench-regression harness: -bench-json runs the hot-path
// microbenchmarks (curve transforms, refinement, decomposition — table
// kernel and Skilling reference side by side) plus a Fig. 9 style
// system-level measurement, and writes the snapshot other PRs diff
// against (BENCH_*.json, see scripts/bench.sh).

// benchResult is one microbenchmark's stats.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// fig9Result is the system-level section: the seeding cost (dominated by
// store bulk-load) and the per-query message cost at the largest swept
// scale.
type fig9Result struct {
	Factor           float64 `json:"factor"`
	SeedNodes        int     `json:"seed_nodes"`
	SeedKeys         int     `json:"seed_keys"`
	SeedSeconds      float64 `json:"seed_seconds"`
	SweepSeconds     float64 `json:"sweep_seconds"`
	MessagesPerQuery float64 `json:"messages_per_query"`
}

type benchSnapshot struct {
	Generated string                 `json:"generated"`
	Go        string                 `json:"go"`
	Micro     map[string]benchResult `json:"micro"`
	Fig9      fig9Result             `json:"fig9"`
}

func record(micro map[string]benchResult, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	micro[name] = benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	fmt.Printf("%-28s %12.1f ns/op %6d allocs/op %8d B/op\n",
		name, micro[name].NsPerOp, micro[name].AllocsPerOp, micro[name].BytesPerOp)
}

// benchQueryRegion mirrors the query shapes the engine produces: a range,
// a wildcard dimension, endpoint-aligned.
func benchQueryRegion(d, k int) sfc.Region {
	q := uint64(1) << uint(k-4)
	dims := make([][]sfc.Interval, d)
	dims[0] = []sfc.Interval{{Lo: q, Hi: 5*q - 1}}
	for i := 1; i < d; i++ {
		if i%2 == 1 {
			dims[i] = []sfc.Interval{{Lo: 0, Hi: uint64(1)<<uint(k) - 1}}
		} else {
			dims[i] = []sfc.Interval{{Lo: 3 * q, Hi: 9*q - 1}}
		}
	}
	return sfc.NewRegion(dims)
}

func runBenchJSON(path string, factor float64) error {
	snap := benchSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Micro:     make(map[string]benchResult),
	}

	for _, g := range []struct {
		name string
		d, k int
	}{{"2x32", 2, 32}, {"3x21", 3, 21}} {
		var h sfc.Curve = sfc.MustHilbert(g.d, g.k)
		r := benchQueryRegion(g.d, g.k)
		cl := sfc.Cluster{Prefix: 6, Level: 3}
		pt := make([]uint64, g.d)
		for i := range pt {
			pt[i] = uint64(1)<<uint(g.k-2) + uint64(i*7919)
		}
		idx := h.Encode(pt)

		record(snap.Micro, "encode_"+g.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx = h.Encode(pt)
			}
		})
		record(snap.Micro, "decode_"+g.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Decode(idx, pt)
			}
		})
		record(snap.Micro, "refinestep_"+g.name, func(b *testing.B) {
			var sc sfc.Scratch
			dst := sfc.RefineStepInto(nil, h, cl, r, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = sfc.RefineStepInto(dst[:0], h, cl, r, &sc)
			}
		})
		record(snap.Micro, "refinestep_ref_"+g.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sfc.RefineStepReference(h, cl, r)
			}
		})
		record(snap.Micro, "clusters_"+g.name, func(b *testing.B) {
			var sc sfc.Scratch
			dst := sfc.ClustersInto(nil, h, r, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = sfc.ClustersInto(dst[:0], h, r, &sc)
			}
		})
		record(snap.Micro, "clusters_ref_"+g.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sfc.ClustersReference(h, r)
			}
		})
		record(snap.Micro, "coarseclusters_"+g.name, func(b *testing.B) {
			var sc sfc.Scratch
			dst := sfc.CoarseClustersInto(nil, h, r, 64, &sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = sfc.CoarseClustersInto(dst[:0], h, r, 64, &sc)
			}
		})
	}

	// System level: seed the largest Fig. 9 scale (bulk-load path), then
	// sweep its six Q1 queries for the per-query message cost.
	scales := experiments.PaperScales(factor)
	largest := scales[len(scales)-1]
	cfg := experiments.SweepConfig{
		Dims: 2, Bits: 32, Scales: []experiments.Scale{largest},
		Kind: experiments.Q1, Queries: 6, Seed: 9,
	}
	start := time.Now()
	nw, _, err := experiments.BuildNetwork(cfg, largest)
	if err != nil {
		return err
	}
	seed := time.Since(start)
	_ = nw // the sweep below rebuilds; this build times seeding in isolation

	start = time.Now()
	pts, err := experiments.Sweep(cfg)
	if err != nil {
		return err
	}
	sweep := time.Since(start)
	var msgs, n float64
	for _, p := range pts {
		for _, row := range p.Rows {
			msgs += float64(row.Messages)
			n++
		}
	}
	if n > 0 {
		msgs /= n
	}
	snap.Fig9 = fig9Result{
		Factor:           factor,
		SeedNodes:        largest.Nodes,
		SeedKeys:         largest.Keys,
		SeedSeconds:      seed.Seconds(),
		SweepSeconds:     sweep.Seconds(),
		MessagesPerQuery: msgs,
	}
	fmt.Printf("fig9 (factor %g): %d nodes / %d keys seeded in %.2fs, sweep %.2fs, %.1f messages/query\n",
		factor, largest.Nodes, largest.Keys, seed.Seconds(), sweep.Seconds(), msgs)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
