package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/workload"
)

// The streaming regression harness: -stream-json runs the two scenarios
// the streaming redesign is accountable for — top-k early termination
// (Limit(k) storms must cut cluster-query traffic versus draining the same
// queries fully) and the popular-cluster result cache (a Zipf keyword
// storm must mostly hit) — and writes the snapshot other PRs diff against
// (BENCH_5.json). Both scenarios are seeded sim runs, so every count
// except wall-clock is machine-independent, and the run fails outright
// when a headline regresses past its floor.

// streamTopK compares a Limit(k) query storm against a full drain of the
// same queries on the same network.
type streamTopK struct {
	Nodes            int     `json:"nodes"`
	Keys             int     `json:"keys"`
	Queries          int     `json:"queries"`
	K                int     `json:"k"`
	FullClusterMsgs  int     `json:"full_cluster_msgs"`
	LimitClusterMsgs int     `json:"limit_cluster_msgs"`
	SavingsPct       float64 `json:"savings_pct"`
	CancelMsgs       int     `json:"cancel_msgs"`
	FullMatches      int     `json:"full_matches"`
	LimitMatches     int     `json:"limit_matches"`
}

// streamCache measures the popular-cluster result cache under a
// Zipf-repeated keyword storm.
type streamCache struct {
	Nodes      int     `json:"nodes"`
	Keys       int     `json:"keys"`
	Queries    int     `json:"queries"`
	Pool       int     `json:"pool"`
	CacheSize  int     `json:"cache_size"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	HitRatePct float64 `json:"hit_rate_pct"`
	Matches    int     `json:"matches"`
}

type streamSnapshot struct {
	Generated   string      `json:"generated"`
	Go          string      `json:"go"`
	WallSeconds float64     `json:"wall_seconds"`
	TopK        streamTopK  `json:"topk"`
	Cache       streamCache `json:"cache"`
}

func buildStreamNet(nodes, keys int, seed int64, opts squid.Options) (*sim.Network, *workload.Vocabulary, error) {
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		return nil, nil, err
	}
	nw, err := sim.Build(sim.Config{Nodes: nodes, Space: space, Seed: seed, Engine: opts})
	if err != nil {
		return nil, nil, err
	}
	vocab := workload.NewVocabulary(seed+1, 1200, 1.2)
	if err := nw.Preload(workload.Elements(workload.KeyTuples(vocab, seed+2, keys, 2))); err != nil {
		return nil, nil, err
	}
	return nw, vocab, nil
}

// runStreamTopK drains a Q1/Q2 query pool twice — full, then Limit(k) —
// and totals cluster-query traffic. No caches are configured, so the
// second pass pays full price and the delta is pure early termination.
func runStreamTopK(seed int64) (streamTopK, error) {
	const (
		nodes = 120
		keys  = 24000
		pool  = 40
		k     = 10
	)
	nw, vocab, err := buildStreamNet(nodes, keys, seed, squid.Options{})
	if err != nil {
		return streamTopK{}, err
	}
	// Browsing storms are broad by construction (the user wants "the first
	// k of everything about X"), so the pool is the paper's Q1 class: one
	// keyword or partial, rest wildcards. Selective Q2 lookups return fewer
	// than k matches and drain fully either way.
	gen := workload.NewQueryGen(vocab, seed+3, 2)
	queries := make([]keyspace.Query, pool)
	for i := range queries {
		queries[i] = gen.Q1()
	}
	out := streamTopK{Nodes: nodes, Keys: keys, Queries: pool, K: k}
	for i, q := range queries {
		via := i % len(nw.Peers)
		full, qmFull := nw.QueryStream(via, q)
		if full.Err != nil {
			return out, fmt.Errorf("full drain %d: %w", i, full.Err)
		}
		lim, qmLim := nw.QueryStream(via, q, squid.Limit(k))
		if lim.Err != nil {
			return out, fmt.Errorf("limited stream %d: %w", i, lim.Err)
		}
		out.FullClusterMsgs += qmFull.ClusterMessages
		out.LimitClusterMsgs += qmLim.ClusterMessages
		out.CancelMsgs += qmLim.CancelMessages
		out.FullMatches += len(full.Matches)
		out.LimitMatches += len(lim.Matches)
	}
	if out.FullClusterMsgs > 0 {
		out.SavingsPct = 100 * (1 - float64(out.LimitClusterMsgs)/float64(out.FullClusterMsgs))
	}
	return out, nil
}

// runStreamCache replays a Zipf(1.0)-popular keyword storm against a
// result-cached network and reads the hit/miss counters off telemetry.
func runStreamCache(seed int64) (streamCache, error) {
	const (
		nodes     = 80
		keys      = 16000
		pool      = 48
		storm     = 400
		cacheSize = 1024
	)
	nw, vocab, err := buildStreamNet(nodes, keys, seed, squid.Options{ResultCacheSize: cacheSize})
	if err != nil {
		return streamCache{}, err
	}
	queries := workload.ZipfRepeats(
		workload.NewQueryGen(vocab, seed+3, 2).Pool(pool), seed+4, 1.0, storm)
	out := streamCache{Nodes: nodes, Keys: keys, Queries: storm, Pool: pool, CacheSize: cacheSize}
	for i, q := range queries {
		res, _ := nw.QueryStream(i%len(nw.Peers), q)
		if res.Err != nil {
			return out, fmt.Errorf("cache storm query %d: %w", i, res.Err)
		}
		out.Matches += len(res.Matches)
	}
	vec := nw.Telemetry.CounterVec("squid_result_cache_total",
		"popular-cluster result-cache lookups on incoming cluster batches", "node", "outcome")
	for _, p := range nw.PeerList() {
		node := strconv.FormatUint(uint64(p.ID()), 16)
		out.Hits += vec.With(node, "hit").Value()
		out.Misses += vec.With(node, "miss").Value()
	}
	if total := out.Hits + out.Misses; total > 0 {
		out.HitRatePct = 100 * float64(out.Hits) / float64(total)
	}
	return out, nil
}

func runStreamJSON(path string) error {
	start := time.Now()
	snap := streamSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	topk, err := runStreamTopK(11001)
	if err != nil {
		return fmt.Errorf("stream topk: %w", err)
	}
	snap.TopK = topk
	fmt.Printf("stream topk: %d queries, k=%d: %d cluster msgs limited vs %d full (%.1f%% saved, %d cancels), %d/%d matches\n",
		topk.Queries, topk.K, topk.LimitClusterMsgs, topk.FullClusterMsgs,
		topk.SavingsPct, topk.CancelMsgs, topk.LimitMatches, topk.FullMatches)
	if topk.SavingsPct < 30 {
		return fmt.Errorf("stream topk: %.1f%% cluster-message savings, need >= 30%%", topk.SavingsPct)
	}

	cache, err := runStreamCache(12001)
	if err != nil {
		return fmt.Errorf("stream cache: %w", err)
	}
	snap.Cache = cache
	fmt.Printf("stream cache: %d Zipf queries over %d-query pool: %d hits / %d misses (%.1f%% hit rate)\n",
		cache.Queries, cache.Pool, cache.Hits, cache.Misses, cache.HitRatePct)
	if cache.HitRatePct < 50 {
		return fmt.Errorf("stream cache: %.1f%% hit rate, need >= 50%%", cache.HitRatePct)
	}

	snap.WallSeconds = time.Since(start).Seconds()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
