package main

// The -wire-json harness: codec and transport benchmarks for the binary
// wire format (BENCH_3.json). Three sections:
//
//   - codec: per hot-path message type, steady-state encode cost and
//     wire size under the binary codec vs gob-as-the-transport-frames-it
//     (a persistent stream of wireEnvelope values, so gob's one-time
//     type-description tax is excluded and only the honest per-message
//     overhead — type names for interface-valued fields, field deltas —
//     is charged).
//   - throughput: a concurrent burst of ClusterQueryMsg RPCs across a
//     real loopback TCP pair, binary vs gob connections, plus the
//     frames-per-flush coalescing ratio the group commit achieves.
//   - ring: bytes on the wire per end-to-end flexible query on a live
//     three-node TCP ring (publishes, chord joins, cluster fan-out,
//     result collection), current build vs a ring pinned to the legacy
//     gob stream.

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/squid"
	"squid/internal/telemetry"
	"squid/internal/transport"
	"squid/internal/wire"
)

type wireCodecSide struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerMsg int     `json:"bytes_per_msg"`
	// FirstMsgBytes is the cost of the first message on a fresh
	// connection: for gob, the type descriptors the stream must carry
	// before the value; for binary, the negotiation preamble plus the
	// frame. Every dial, re-dial and short-lived client connection pays
	// this.
	FirstMsgBytes int `json:"first_msg_bytes"`
}

type wireCodecResult struct {
	Binary        wireCodecSide `json:"binary"`
	Gob           wireCodecSide `json:"gob"`
	BytesRatio    float64       `json:"bytes_ratio"`     // gob / binary, steady state
	FirstMsgRatio float64       `json:"first_msg_ratio"` // gob / binary, fresh connection
	EncodeSpeedup float64       `json:"encode_speedup"`  // gob ns / binary ns
}

type wireThroughputSide struct {
	Msgs       int     `json:"msgs"`
	Seconds    float64 `json:"seconds"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	Frames     uint64  `json:"frames"`
	Flushes    uint64  `json:"flushes"`
}

type wireRingSide struct {
	Queries       int     `json:"queries"`
	BytesTotal    uint64  `json:"bytes_total"`
	BytesPerQuery float64 `json:"bytes_per_query"`
}

type wireSnapshot struct {
	Generated  string                     `json:"generated"`
	Go         string                     `json:"go"`
	Codec      map[string]wireCodecResult `json:"codec"`
	Throughput struct {
		Binary  wireThroughputSide `json:"binary"`
		Gob     wireThroughputSide `json:"gob"`
		Speedup float64            `json:"speedup"`
	} `json:"throughput"`
	Ring struct {
		Binary    wireRingSide `json:"binary"`
		Legacy    wireRingSide `json:"legacy_gob"`
		Reduction float64      `json:"reduction"` // legacy / binary bytes per query
	} `json:"ring"`
}

// wireBenchMsgs are the hot-path messages the codec section measures:
// the cluster-query fan-out triple the issue targets, plus the
// replication delta and the stabilize/finger RPCs.
func wireBenchMsgs() []struct {
	name string
	msg  any
} {
	q := keyspace.Query{keyspace.Prefix("comp"), keyspace.Wildcard()}
	cq := squid.ClusterQueryMsg{
		QID:   4242,
		Query: q,
		Clusters: []squid.ClusterRef{
			{Prefix: 0x3f00, Level: 10, Complete: true},
			{Prefix: 0x3f40, Level: 12},
			{Prefix: 0x3f80, Level: 12, Complete: true},
		},
		ReplyTo: "10.1.2.3:45678",
		Token:   99,
		Trace:   telemetry.TraceRef{Parent: 7, Depth: 3, Mode: telemetry.TraceOn},
	}
	elems := []squid.Element{
		{Values: []string{"computer", "network"}, Data: "doc-17"},
		{Values: []string{"computer", "graphics"}, Data: "doc-29"},
	}
	return []struct {
		name string
		msg  any
	}{
		{"cluster_query", cq},
		{"batch_4", squid.BatchMsg{Queries: []squid.ClusterQueryMsg{cq, cq, cq, cq}}},
		{"sub_result", squid.SubResultMsg{QID: 4242, Token: 99, Matches: elems}},
		{"replica_delta", squid.ReplicaMsg{Items: []chord.Item{
			{Key: 0x1234, Value: elems},
			{Key: 0x5678, Value: elems[:1]},
		}}},
		{"app_cluster_query", chord.AppMsg{From: "10.1.2.3:45678", Payload: cq}},
		{"stabilize_state", chord.StateMsg{Token: 3, Self: chord.NodeRef{ID: 0xabc, Addr: "10.0.0.1:8001"},
			Pred: chord.NodeRef{ID: 0x123, Addr: "10.0.0.2:8001"},
			Succs: []chord.NodeRef{
				{ID: 0xdef, Addr: "10.0.0.3:8001"},
				{ID: 0xfff, Addr: "10.0.0.4:8001"},
			}, Load: 120}},
		{"finger_find", chord.FindMsg{Target: 0xdeadbeef, Token: 17, ReplyTo: "10.0.0.1:8001", Hops: 3, Trace: 7}},
	}
}

// gobEnvelope mirrors the transport's stream frame (transport.wireEnvelope
// is unexported; the shape is what gob charges for).
type gobEnvelope struct {
	From    string
	Payload any
}

// countWriter tallies bytes without retaining them.
type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) { c.n += len(p); return len(p), nil }

func runWireCodecSection(snap *wireSnapshot) error {
	const from = "10.1.2.3:45678"
	for _, bm := range wireBenchMsgs() {
		var res wireCodecResult

		// Binary: frame body + the 4-byte length header the transport adds.
		var e wire.Encoder
		if !wire.EncodeMessage(&e, bm.msg) {
			return fmt.Errorf("wire bench: no codec for %T", bm.msg)
		}
		res.Binary.BytesPerMsg = e.Len() + 4
		// First message on a fresh connection: 5-byte preamble, the
		// varint-length dialer address (sent once, never again), the frame.
		var pe wire.Encoder
		pe.String(from)
		res.Binary.FirstMsgBytes = 5 + pe.Len() + res.Binary.BytesPerMsg
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Reset()
				wire.EncodeMessage(&e, bm.msg)
			}
		})
		res.Binary.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		res.Binary.AllocsPerOp = r.AllocsPerOp()

		// Gob, steady state: one persistent encoder per connection, so the
		// type-description tax is paid once and excluded. Per-message bytes
		// are the stream growth averaged over a window after the first
		// (descriptor-carrying) message.
		cw := &countWriter{}
		enc := gob.NewEncoder(cw)
		env := gobEnvelope{From: from, Payload: bm.msg}
		if err := enc.Encode(env); err != nil {
			return fmt.Errorf("wire bench: gob %s: %w", bm.name, err)
		}
		warm := cw.n
		const window = 64
		for i := 0; i < window; i++ {
			if err := enc.Encode(env); err != nil {
				return fmt.Errorf("wire bench: gob %s: %w", bm.name, err)
			}
		}
		res.Gob.BytesPerMsg = (cw.n - warm) / window
		res.Gob.FirstMsgBytes = warm
		benc := gob.NewEncoder(io.Discard)
		benc.Encode(env) // prime the descriptor outside the timed loop
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benc.Encode(env)
			}
		})
		res.Gob.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		res.Gob.AllocsPerOp = r.AllocsPerOp()

		res.BytesRatio = float64(res.Gob.BytesPerMsg) / float64(res.Binary.BytesPerMsg)
		res.FirstMsgRatio = float64(res.Gob.FirstMsgBytes) / float64(res.Binary.FirstMsgBytes)
		res.EncodeSpeedup = res.Gob.NsPerOp / res.Binary.NsPerOp
		snap.Codec[bm.name] = res
		fmt.Printf("%-20s binary %5d B %9.0f ns/op %3d allocs | gob %5d B %9.0f ns/op %3d allocs | %4.1fx smaller, %4.1fx on fresh conns, %4.1fx faster encode\n",
			bm.name, res.Binary.BytesPerMsg, res.Binary.NsPerOp, res.Binary.AllocsPerOp,
			res.Gob.BytesPerMsg, res.Gob.NsPerOp, res.Gob.AllocsPerOp,
			res.BytesRatio, res.FirstMsgRatio, res.EncodeSpeedup)
	}
	return nil
}

// countingHandler counts deliveries and signals when the expected total
// arrives.
type countingHandler struct {
	n    atomic.Int64
	want int64
	done chan struct{}
	once sync.Once
}

func (h *countingHandler) Deliver(from transport.Addr, msg any) {
	if h.n.Add(1) >= h.want {
		h.once.Do(func() { close(h.done) })
	}
}

// runWireThroughput blasts msgs ClusterQueryMsg RPCs from 8 concurrent
// senders over one loopback TCP connection and reports end-to-end
// delivered messages per second.
func runWireThroughput(msgs int, gobMode bool) (wireThroughputSide, error) {
	var side wireThroughputSide
	h := &countingHandler{want: int64(msgs), done: make(chan struct{})}
	dst, err := transport.ListenTCP("127.0.0.1:0", h)
	if err != nil {
		return side, err
	}
	defer func() { _ = dst.Close() }() // benchmark teardown; the measurement is already taken
	src, err := transport.ListenTCP("127.0.0.1:0", &countingHandler{want: 1 << 62, done: make(chan struct{})})
	if err != nil {
		return side, err
	}
	defer func() { _ = src.Close() }() // benchmark teardown; the measurement is already taken
	if gobMode {
		src.SetWireMode(transport.WireGob)
	}
	reg := telemetry.NewRegistry(time.Now)
	src.Instrument(reg)

	msg := wireBenchMsgs()[0].msg // cluster_query
	const senders = 8
	start := time.Now()
	var wg sync.WaitGroup
	var sendErr atomic.Value
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < msgs; i += senders {
				if err := src.Send(dst.Addr(), msg); err != nil {
					sendErr.Store(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err, ok := sendErr.Load().(error); ok {
		return side, err
	}
	select {
	case <-h.done:
	case <-time.After(60 * time.Second):
		return side, fmt.Errorf("wire bench: throughput run delivered %d/%d", h.n.Load(), msgs)
	}
	side.Seconds = time.Since(start).Seconds()
	side.Msgs = msgs
	side.MsgsPerSec = float64(msgs) / side.Seconds
	codec := "binary"
	if gobMode {
		codec = "gob"
	}
	side.Frames = reg.CounterVec("squid_transport_tcp_frames_total", "", "codec").With(codec).Value()
	side.Flushes = reg.Counter("squid_transport_tcp_flushes_total", "").Value()
	return side, nil
}

// ringNode is one member of the live TCP measurement ring.
type ringNode struct {
	node *chord.Node
	ep   *transport.TCPEndpoint
	reg  *telemetry.Registry
}

func startRingNode(space *keyspace.Space, id uint64, mode transport.WireMode) (*ringNode, error) {
	eng := squid.New(space)
	node := chord.NewNode(chord.Config{
		Space:      chord.Space{Bits: space.IndexBits()},
		RPCTimeout: 5 * time.Second,
	}, chord.ID(id), eng)
	eng.Attach(node)
	ep, err := transport.ListenTCP("127.0.0.1:0", node)
	if err != nil {
		return nil, err
	}
	ep.SetWireMode(mode)
	reg := telemetry.NewRegistry(time.Now)
	ep.Instrument(reg)
	node.Start(ep)
	return &ringNode{node: node, ep: ep, reg: reg}, nil
}

// ringSink collects client query results keyed by token.
type ringSink struct {
	mu      sync.Mutex
	waiters map[uint64]chan squid.ClientResultMsg
}

func (s *ringSink) Deliver(from transport.Addr, msg any) {
	if m, ok := msg.(chord.AppMsg); ok {
		msg = m.Payload
	}
	res, ok := msg.(squid.ClientResultMsg)
	if !ok {
		return
	}
	s.mu.Lock()
	ch := s.waiters[res.Token]
	delete(s.waiters, res.Token)
	s.mu.Unlock()
	if ch != nil {
		ch <- res
	}
}

func (s *ringSink) expect(token uint64) chan squid.ClientResultMsg {
	ch := make(chan squid.ClientResultMsg, 1)
	s.mu.Lock()
	s.waiters[token] = ch
	s.mu.Unlock()
	return ch
}

// runWireRing measures wire bytes per flexible query on a three-node TCP
// ring (plus out-of-ring client), with every endpoint pinned to mode.
func runWireRing(queries int, mode transport.WireMode) (wireRingSide, error) {
	var side wireRingSide
	space, err := keyspace.NewWordSpace(2, 16)
	if err != nil {
		return side, err
	}
	var nodes []*ringNode
	defer func() {
		for _, n := range nodes {
			_ = n.ep.Close() // benchmark teardown; the measurement is already taken
		}
	}()
	for i, id := range []uint64{1111, 22222, 44444} {
		n, err := startRingNode(space, id, mode)
		if err != nil {
			return side, err
		}
		nodes = append(nodes, n)
		if i == 0 {
			if err := n.node.Invoke(n.node.Create); err != nil {
				return side, err
			}
			continue
		}
		done := make(chan error, 1)
		boot := nodes[0].ep.Addr()
		if err := n.node.Invoke(func() { n.node.Join(boot, func(err error) { done <- err }) }); err != nil {
			return side, err
		}
		select {
		case err := <-done:
			if err != nil {
				return side, fmt.Errorf("join node %d: %w", i, err)
			}
		case <-time.After(30 * time.Second):
			return side, fmt.Errorf("join node %d timed out", i)
		}
	}

	sink := &ringSink{waiters: make(map[uint64]chan squid.ClientResultMsg)}
	client, err := transport.ListenTCP("127.0.0.1:0", sink)
	if err != nil {
		return side, err
	}
	defer func() { _ = client.Close() }() // benchmark teardown; the measurement is already taken
	client.SetWireMode(mode)
	clientReg := telemetry.NewRegistry(time.Now)
	client.Instrument(clientReg)

	docs := [][2]string{
		{"computer", "network"}, {"computer", "graphics"},
		{"compiler", "design"}, {"database", "systems"},
		{"storage", "grid"}, {"compute", "cluster"},
	}
	for i, d := range docs {
		msg := chord.AppMsg{From: client.Addr(), Payload: squid.ClientPublishMsg{
			Elem: squid.Element{Values: []string{d[0], d[1]}, Data: fmt.Sprintf("doc%d", i)},
		}}
		if err := client.Send(nodes[0].ep.Addr(), msg); err != nil {
			return side, err
		}
	}

	runQuery := func(token uint64) (squid.ClientResultMsg, error) {
		ch := sink.expect(token)
		q := chord.AppMsg{From: client.Addr(), Payload: squid.ClientQueryMsg{
			Query: "(comp*, *)", ReplyTo: client.Addr(), Token: token,
		}}
		if err := client.Send(nodes[0].ep.Addr(), q); err != nil {
			return squid.ClientResultMsg{}, err
		}
		select {
		case res := <-ch:
			return res, nil
		case <-time.After(10 * time.Second):
			return squid.ClientResultMsg{}, fmt.Errorf("query %d timed out", token)
		}
	}

	// Publishes route asynchronously: poll until the corpus is queryable.
	want := 4 // computer x2, compiler, compute
	settled := false
	for attempt := 0; attempt < 200; attempt++ {
		res, err := runQuery(uint64(1_000_000 + attempt))
		if err == nil && res.Err == "" && len(res.Matches) == want {
			settled = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !settled {
		return side, fmt.Errorf("ring never settled to %d matches", want)
	}

	regs := []*telemetry.Registry{clientReg}
	for _, n := range nodes {
		regs = append(regs, n.reg)
	}
	bytesTotal := func() uint64 {
		var sum uint64
		for _, reg := range regs {
			sum += reg.Counter("squid_transport_tcp_bytes_written_total", "").Value()
		}
		return sum
	}

	before := bytesTotal()
	for i := 0; i < queries; i++ {
		res, err := runQuery(uint64(2_000_000 + i))
		if err != nil {
			return side, err
		}
		if res.Err != "" {
			return side, fmt.Errorf("query %d: %s", i, res.Err)
		}
		if len(res.Matches) != want {
			return side, fmt.Errorf("query %d found %d matches, want %d", i, len(res.Matches), want)
		}
	}
	side.Queries = queries
	side.BytesTotal = bytesTotal() - before
	side.BytesPerQuery = float64(side.BytesTotal) / float64(queries)
	return side, nil
}

func runWireJSON(path string) error {
	snap := wireSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Codec:     make(map[string]wireCodecResult),
	}

	fmt.Println("== codec: binary vs gob (steady-state per-message cost) ==")
	if err := runWireCodecSection(&snap); err != nil {
		return err
	}

	fmt.Println("\n== throughput: loopback TCP burst, 8 senders ==")
	const burst = 50_000
	bin, err := runWireThroughput(burst, false)
	if err != nil {
		return err
	}
	fmt.Printf("binary  %8.0f msgs/sec  (%d frames, %d flushes: %.1f frames/flush)\n",
		bin.MsgsPerSec, bin.Frames, bin.Flushes, float64(bin.Frames)/float64(max(1, int(bin.Flushes))))
	gb, err := runWireThroughput(burst, true)
	if err != nil {
		return err
	}
	fmt.Printf("gob     %8.0f msgs/sec  (%d frames, %d flushes: %.1f frames/flush)\n",
		gb.MsgsPerSec, gb.Frames, gb.Flushes, float64(gb.Frames)/float64(max(1, int(gb.Flushes))))
	snap.Throughput.Binary = bin
	snap.Throughput.Gob = gb
	snap.Throughput.Speedup = bin.MsgsPerSec / gb.MsgsPerSec

	fmt.Println("\n== ring: bytes per flexible query, 3-node TCP ring ==")
	const ringQueries = 50
	rbin, err := runWireRing(ringQueries, transport.WireAuto)
	if err != nil {
		return err
	}
	fmt.Printf("binary  %8.0f bytes/query\n", rbin.BytesPerQuery)
	rgob, err := runWireRing(ringQueries, transport.WireLegacy)
	if err != nil {
		return err
	}
	fmt.Printf("legacy  %8.0f bytes/query\n", rgob.BytesPerQuery)
	snap.Ring.Binary = rbin
	snap.Ring.Legacy = rgob
	snap.Ring.Reduction = rgob.BytesPerQuery / rbin.BytesPerQuery
	fmt.Printf("reduction: %.1fx\n", snap.Ring.Reduction)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
