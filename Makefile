GO ?= go

.PHONY: all build test race cover lint bench fuzz

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage profile + per-function summary; CI uploads cover.out as an
# artifact from the cover job.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -1

# The full local static-analysis gate: go vet + the in-repo squid-lint
# analyzer suite (+ staticcheck/govulncheck when installed). See
# DESIGN.md §4e.
lint:
	scripts/lint.sh

bench:
	scripts/bench.sh

# Short local fuzz sweep (10s per target); CI's nightly job runs 60s each.
fuzz:
	for f in FuzzHilbertRoundTrip FuzzRefineStepSound FuzzKernelEquivalence; do \
		$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime 10s ./internal/sfc || exit 1; \
	done
	for f in FuzzParse FuzzWordDimConsistency FuzzSpaceSoundness; do \
		$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime 10s ./internal/keyspace || exit 1; \
	done
