// Newsgroups: the paper's third use case — "to query interest groups in a
// bulletin-board news system". Messages are indexed by (category, topic)
// and subscribers discover everything matching their interest profile,
// including whole-category subscriptions via prefixes. Also demonstrates
// churn: peers join and leave while the board stays queryable.
//
//	go run ./examples/newsgroups
package main

import (
	"fmt"
	"log"
	"math/rand"

	"squid/internal/chord"
	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

func main() {
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 32, Space: space, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	categories := map[string][]string{
		"science":    {"physics", "biology", "astronomy"},
		"computing":  {"golang", "networks", "databases", "security"},
		"recreation": {"cycling", "chess", "gardening"},
	}
	posted := 0
	for cat, topics := range categories {
		for _, topic := range topics {
			for i := 0; i < 5; i++ {
				elem := squid.Element{
					Values: []string{cat, topic},
					Data:   fmt.Sprintf("<%s/%s/msg%02d>", cat, topic, i),
				}
				if err := nw.Publish(posted%len(nw.Peers), elem); err != nil {
					log.Fatal(err)
				}
				posted++
			}
		}
	}
	nw.Quiesce()
	fmt.Printf("posted %d messages in %d categories on %d peers\n\n", posted, len(categories), len(nw.Peers))

	profiles := []string{
		"(computing, golang)", // one group
		"(computing, *)",      // a whole category
		"(sci*, *)",           // categories by prefix
		"(*, c*)",             // every topic starting with c, anywhere
		"(recreation, chess)", // exact
		"(computing, net*)",   // partial topic
	}
	for _, ps := range profiles {
		q := keyspace.MustParse(ps)
		res, qm := nw.Query(1, q)
		if res.Err != nil {
			log.Fatalf("%s: %v", ps, res.Err)
		}
		fmt.Printf("profile %-24s -> %2d messages from %d data nodes\n",
			ps, len(res.Matches), len(qm.DataNodes))
	}

	// Bulletin boards churn: peers come and go, the index self-repairs, and
	// subscriptions keep returning everything.
	fmt.Println("\nchurning: 6 joins, 4 departures...")
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 6; i++ {
		if _, err := nw.AddPeer(chord.ID(rng.Uint64())); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		nw.RemovePeer(rng.Intn(len(nw.Peers)))
	}
	nw.StabilizeAll(3)

	check := keyspace.MustParse("(computing, *)")
	want := len(nw.BruteForceMatches(check))
	res, _ := nw.Query(0, check)
	fmt.Printf("after churn, %s still finds %d/%d messages\n", check, len(res.Matches), want)
	if len(res.Matches) != want {
		log.Fatal("messages lost during churn!")
	}
	fmt.Println("board intact.")
}
