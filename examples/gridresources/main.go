// Gridresources: the paper's computational-grid motivation — machines
// described by globally defined numeric attributes (memory, CPU frequency,
// bandwidth), discovered with range queries like "256-512 MB of memory,
// any CPU, at least 10 Mbps" (the paper's own example, Section 3.3).
//
//	go run ./examples/gridresources
package main

import (
	"fmt"
	"log"

	"squid/internal/keyspace"
	"squid/internal/sfc"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/workload"
)

func main() {
	const (
		peers    = 150
		machines = 20_000
	)
	// 3-D attribute space over a Hilbert curve with 21-bit axes (63-bit
	// index), the paper's 3-D configuration: memory (MB), CPU (MHz),
	// bandwidth (Mbps), each mapped linearly onto its axis.
	curve, err := sfc.NewHilbert(3, 21)
	if err != nil {
		log.Fatal(err)
	}
	space, err := keyspace.New(curve,
		keyspace.MustNumericDim("memory", 21, 0, 8192),
		keyspace.MustNumericDim("cpu", 21, 0, 4000),
		keyspace.MustNumericDim("bandwidth", 21, 0, 1000),
	)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: peers, Space: space, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	// Register a synthetic machine population clustered around common
	// hardware configurations.
	resources := workload.Resources(13, machines)
	elems := make([]squid.Element, machines)
	for i, r := range resources {
		elems[i] = squid.Element{Values: r, Data: fmt.Sprintf("node%05d.grid.example", i)}
	}
	if err := nw.Preload(elems); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d machines on %d index peers\n\n", machines, peers)

	// Range queries straight from the paper: "(256-512 MB, *, 10Mbps-*)".
	queries := []string{
		"(256-512, *, 10-*)",       // the paper's example
		"(1024-*, 2000-*, 100-*)",  // big memory, fast cpu, fast net
		"(*-256, *, *)",            // small machines
		"(2048-4096, *, 900-1100)", // gigabit big-memory nodes
	}
	fmt.Println("query                           matches  procNodes  dataNodes  messages")
	for _, qs := range queries {
		q := keyspace.MustParse(qs)
		res, qm := nw.Query(0, q)
		if res.Err != nil {
			log.Fatalf("%s: %v", qs, res.Err)
		}
		fmt.Printf("%-31s %7d  %9d  %9d  %8d\n",
			qs, len(res.Matches), len(qm.ProcessingNodes), len(qm.DataNodes), qm.Messages())
		for i, m := range res.Matches {
			if i == 3 {
				fmt.Printf("    ... and %d more\n", len(res.Matches)-3)
				break
			}
			fmt.Printf("    %-28s mem=%sMB cpu=%sMHz bw=%sMbps\n", m.Data, m.Values[0], m.Values[1], m.Values[2])
		}
	}

	// Completeness holds for ranges too (the paper's key differentiator
	// over plain DHT resource discovery).
	check := keyspace.MustParse("(256-512, *, 10-*)")
	want := len(nw.BruteForceMatches(check))
	res, _ := nw.Query(5, check)
	fmt.Printf("\nguarantee check: engine %d vs exhaustive %d matches\n", len(res.Matches), want)
	if len(res.Matches) != want {
		log.Fatal("completeness violated!")
	}
}
