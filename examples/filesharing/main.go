// Filesharing: the paper's P2P storage scenario at a realistic (small)
// scale — a few hundred peers index tens of thousands of shared files by
// keyword pairs, and users search with partial keywords and wildcards.
// Demonstrates the scalability claim: queries touch a handful of peers,
// never the whole network.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/workload"
)

func main() {
	const (
		peers = 200
		files = 30_000
	)
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: peers, Space: space, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic shared-file corpus: titles described by two keywords from
	// a Zipf-weighted vocabulary with realistic shared prefixes.
	vocab := workload.NewVocabulary(7, 1500, 1.2)
	tuples := workload.KeyTuples(vocab, 8, files, 2)
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d files on %d peers (%d distinct index keys)\n\n",
		files, peers, nw.TotalKeys())

	// Users search by what they remember: a keyword, a prefix, or both.
	popular := vocab.Words[0]
	second := vocab.Words[1]
	queries := []string{
		fmt.Sprintf("(%s, *)", popular),
		fmt.Sprintf("(%s*, *)", popular[:3]),
		fmt.Sprintf("(%s, %s*)", popular, second[:2]),
		fmt.Sprintf("(*, %s)", second),
	}
	fmt.Println("query                          matches  procNodes  dataNodes  messages  pctOfNetwork")
	for _, qs := range queries {
		q := keyspace.MustParse(qs)
		res, qm := nw.Query(3, q)
		if res.Err != nil {
			log.Fatalf("%s: %v", qs, res.Err)
		}
		fmt.Printf("%-30s %7d  %9d  %9d  %8d  %9.1f%%\n",
			qs, len(res.Matches), len(qm.ProcessingNodes), len(qm.DataNodes), qm.Messages(),
			100*float64(len(qm.ProcessingNodes))/float64(peers))
	}

	// A user who wants "a few sources, fast" streams with Limit: the query
	// stops after k matches and the remaining refinement is never sent.
	broad := keyspace.MustParse(fmt.Sprintf("(%s*, *)", popular[:3]))
	fullRes, fullQM := nw.QueryStream(3, broad)
	topK, topQM := nw.QueryStream(3, broad, squid.Limit(10))
	if fullRes.Err != nil || topK.Err != nil {
		log.Fatal(fullRes.Err, topK.Err)
	}
	fmt.Printf("\ntop-10 stream for %s: %d of %d matches, %d cluster messages vs %d for the full drain\n",
		broad, len(topK.Matches), len(fullRes.Matches), topQM.ClusterMessages, fullQM.ClusterMessages)

	// The guarantee: a flexible query returns every matching file.
	check := keyspace.MustParse(fmt.Sprintf("(%s*, *)", popular[:3]))
	want := len(nw.BruteForceMatches(check))
	res, _ := nw.Query(0, check)
	fmt.Printf("\nguarantee check for %s: engine found %d, exhaustive scan found %d\n",
		check, len(res.Matches), want)
	if len(res.Matches) != want {
		log.Fatal("completeness violated!")
	}
	fmt.Println("all matches found — bounded cost, complete results.")
}
