// Quickstart: build a small simulated Squid network, publish a few
// documents, and run the paper's whole query repertoire — exact keywords,
// partial keywords, wildcards — printing results and per-query costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

func main() {
	// A 2-D keyword space over a Hilbert curve with 32-bit axes (the
	// paper's storage-system configuration), on 16 simulated peers.
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 16, Space: space, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Publish documents described by (keyword, keyword) tuples. Publishing
	// routes each element to the peer owning its curve index.
	docs := []squid.Element{
		{Values: []string{"computer", "network"}, Data: "intro-to-networking.pdf"},
		{Values: []string{"computer", "networks"}, Data: "advanced-networks.pdf"},
		{Values: []string{"computer", "graphics"}, Data: "rendering.pdf"},
		{Values: []string{"computation", "theory"}, Data: "automata.pdf"},
		{Values: []string{"compiler", "design"}, Data: "dragon-book-notes.pdf"},
		{Values: []string{"database", "systems"}, Data: "transactions.pdf"},
		{Values: []string{"distributed", "systems"}, Data: "consensus.pdf"},
		{Values: []string{"network", "security"}, Data: "firewalls.pdf"},
	}
	for i, d := range docs {
		if err := nw.Publish(i%len(nw.Peers), d); err != nil {
			log.Fatal(err)
		}
	}
	nw.Quiesce()
	fmt.Printf("published %d documents across %d peers\n\n", len(docs), len(nw.Peers))

	// The paper's query forms: all matches are guaranteed to be found.
	for _, qs := range []string{
		"(computer, network)",  // exact: one DHT lookup
		"(computer, *)",        // wildcard
		"(comp*, *)",           // partial keyword
		"(comp*, net*)",        // two partials
		"(*, systems)",         // wildcard first
		"(computa-computz, *)", // lexicographic range
	} {
		q := keyspace.MustParse(qs)
		res, qm := nw.Query(0, q)
		if res.Err != nil {
			log.Fatalf("%s: %v", qs, res.Err)
		}
		fmt.Printf("%-24s -> %d matches  (processing nodes: %d, data nodes: %d, messages: %d)\n",
			qs, len(res.Matches), len(qm.ProcessingNodes), len(qm.DataNodes), qm.Messages())
		for _, m := range res.Matches {
			fmt.Printf("    %-28s %v\n", m.Data, m.Values)
		}
	}

	// Streaming delivery: batches arrive as refinement subtrees complete,
	// Limit(k) stops after k matches and cancels the outstanding subtrees,
	// and the returned cursor resumes the next page where this one stopped.
	q := keyspace.MustParse("(comp*, *)")
	page, qm := nw.QueryStream(0, q, squid.Limit(2))
	if page.Err != nil {
		log.Fatalf("stream: %v", page.Err)
	}
	fmt.Printf("\nstreamed %-13s -> first %d matches in %d batches (messages: %d)\n",
		q, len(page.Matches), len(page.Batches), qm.Messages())
	for _, m := range page.Matches {
		fmt.Printf("    %-28s %v\n", m.Data, m.Values)
	}
	next, _ := nw.QueryStream(0, q, squid.Limit(2), squid.WithCursor(page.Cursor))
	if next.Err != nil {
		log.Fatalf("resumed stream: %v", next.Err)
	}
	fmt.Printf("resumed via cursor       -> next %d matches (exhausted: %v)\n",
		len(next.Matches), next.Cursor.Exhausted())
	for _, m := range next.Matches {
		fmt.Printf("    %-28s %v\n", m.Data, m.Values)
	}
}
