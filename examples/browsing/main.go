// Browsing: iterative neighborhood expansion over the keyword space, the
// incremental-consumption workload behind streaming delivery. A browser
// starts from a seed predicate, pulls one small page at a time via
// Limit(k) + cursor resumption (each page pays only for the subtrees it
// touches — QueryCancelMsg cuts the rest), and widens the predicate once a
// neighborhood is exhausted.
//
//	go run ./examples/browsing
package main

import (
	"fmt"
	"log"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
)

const pageSize = 3

func main() {
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := sim.Build(sim.Config{Nodes: 24, Space: space, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A small media library tagged (subject, format). Curve locality keeps
	// lexicographic neighbors ("bird", "bison", "boar") on nearby peers, so
	// widening the subject prefix expands the query neighborhood instead of
	// restarting it.
	docs := []squid.Element{
		{Values: []string{"bird", "photo"}, Data: "heron.jpg"},
		{Values: []string{"bird", "video"}, Data: "murmuration.mp4"},
		{Values: []string{"bird", "audio"}, Data: "dawn-chorus.ogg"},
		{Values: []string{"bison", "photo"}, Data: "herd.jpg"},
		{Values: []string{"boar", "photo"}, Data: "forest-cam.jpg"},
		{Values: []string{"bear", "video"}, Data: "salmon-run.mp4"},
		{Values: []string{"beaver", "photo"}, Data: "dam.jpg"},
		{Values: []string{"badger", "audio"}, Data: "sett-night.ogg"},
		{Values: []string{"bat", "audio"}, Data: "echolocation.ogg"},
		{Values: []string{"wolf", "photo"}, Data: "pack.jpg"},
		{Values: []string{"lynx", "video"}, Data: "pounce.mp4"},
	}
	for i, d := range docs {
		if err := nw.Publish(i%len(nw.Peers), d); err != nil {
			log.Fatal(err)
		}
	}
	nw.Quiesce()
	fmt.Printf("published %d items across %d peers\n", len(docs), len(nw.Peers))

	// Browse outward from the seed: exhaust one predicate page by page,
	// then widen the prefix and continue. Each page is an independent
	// streaming query resumed from the previous page's cursor, so a browser
	// that stops after page one never pays for the tail.
	for _, predicate := range []string{"(bi*, *)", "(b*, *)"} {
		q := keyspace.MustParse(predicate)
		fmt.Printf("\nbrowsing %s, %d per page:\n", predicate, pageSize)
		var cursor squid.Cursor
		for page := 1; ; page++ {
			opts := []squid.QueryOption{squid.Limit(pageSize)}
			if cursor != "" {
				opts = append(opts, squid.WithCursor(cursor))
			}
			res, qm := nw.QueryStream(0, q, opts...)
			if res.Err != nil {
				log.Fatalf("%s page %d: %v", predicate, page, res.Err)
			}
			for _, m := range res.Matches {
				fmt.Printf("    page %d  %-18s %v\n", page, m.Data, m.Values)
			}
			fmt.Printf("    page %d: %d items, %d messages\n", page, len(res.Matches), qm.Messages())
			cursor = res.Cursor
			if cursor.Exhausted() {
				fmt.Printf("    neighborhood exhausted after %d pages — widening\n", page)
				break
			}
		}
	}
}
