// Faulttolerance: the paper's future-work extension in action — successor
// replication keeps every document discoverable through abrupt node
// failures. Publishes a corpus, kills the three most loaded peers one by
// one, and shows queries staying complete while an unreplicated control
// network loses data.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"squid/internal/keyspace"
	"squid/internal/sim"
	"squid/internal/squid"
	"squid/internal/workload"
)

const (
	peers = 60
	files = 8_000
)

func build(replicas int) (*sim.Network, error) {
	space, err := keyspace.NewWordSpace(2, 32)
	if err != nil {
		return nil, err
	}
	nw, err := sim.Build(sim.Config{
		Nodes: peers, Space: space, Seed: 11,
		Engine: squid.Options{Replicas: replicas},
	})
	if err != nil {
		return nil, err
	}
	vocab := workload.NewVocabulary(11, 800, 1.2)
	tuples := workload.KeyTuples(vocab, 12, files, 2)
	if err := nw.Preload(workload.Elements(tuples)); err != nil {
		return nil, err
	}
	if replicas > 0 {
		nw.PushReplicasAll()
	}
	return nw, nil
}

func killHottest(nw *sim.Network) {
	loads := nw.LoadVector()
	victim := 0
	for i, l := range loads {
		if l > loads[victim] {
			victim = i
		}
	}
	nw.KillPeer(victim)
	nw.StabilizeAll(8)
	nw.PushReplicasAll()
}

func main() {
	q := keyspace.MustParse("(*, *)")

	replicated, err := build(2)
	if err != nil {
		log.Fatal(err)
	}
	control, err := build(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two networks: %d peers, %d files each; one with 2 replicas per item, one without\n\n", peers, files)
	fmt.Println("failure  replicated-found  control-found")
	for round := 1; round <= 3; round++ {
		killHottest(replicated)
		killHottest(control)
		r1, _ := replicated.Query(0, q)
		r2, _ := control.Query(0, q)
		fmt.Printf("%7d  %16d  %13d\n", round, len(r1.Matches), len(r2.Matches))
	}

	final, _ := replicated.Query(0, q)
	if len(final.Matches) != files {
		log.Fatalf("replicated network lost data: %d/%d", len(final.Matches), files)
	}
	fmt.Printf("\nreplicated network survived 3 failures with all %d files intact;\n", files)
	fmt.Println("the control lost every key the failed peers held.")
}
