#!/usr/bin/env bash
# Refresh the benchmark-regression snapshot: runs the hot-path
# microbenchmarks and a Fig. 9 system measurement, writing BENCH_<id>.json
# at the repo root. Usage:
#
#   scripts/bench.sh [id] [factor]
#
# id     snapshot number (default 1  -> BENCH_1.json)
# factor fraction of the paper's scale for the system section (default 0.02)
set -euo pipefail
cd "$(dirname "$0")/.."
id="${1:-1}"
factor="${2:-0.02}"
go run ./cmd/squid-bench -bench-json "BENCH_${id}.json" -factor "$factor"
