#!/usr/bin/env bash
# Refresh a benchmark-regression snapshot, writing BENCH_<id>.json at the
# repo root. Usage:
#
#   scripts/bench.sh [id] [factor]
#
# id     snapshot number (default 1 -> BENCH_1.json). Snapshots have fixed
#        meanings: 1 = hot-path micro + Fig. 9 system section,
#        2 = concurrent-load scheduler, 3 = wire codec (binary vs gob),
#        4 = discrete-event planet-scale sweep (100 to 10000 nodes),
#        5 = streaming (top-k early-termination savings + result-cache
#        hit rate under a Zipf storm).
# factor fraction of the paper's scale for the system section of snapshot 1
#        (default 0.02)
set -euo pipefail
cd "$(dirname "$0")/.."
id="${1:-1}"
factor="${2:-0.02}"
case "$id" in
2) go run ./cmd/squid-bench -sched-json "BENCH_${id}.json" ;;
3) go run ./cmd/squid-bench -wire-json "BENCH_${id}.json" ;;
4) go run ./cmd/squid-bench -des-json "BENCH_${id}.json" ;;
5) go run ./cmd/squid-bench -stream-json "BENCH_${id}.json" ;;
*) go run ./cmd/squid-bench -bench-json "BENCH_${id}.json" -factor "$factor" ;;
esac
