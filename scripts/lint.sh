#!/usr/bin/env bash
# Run the full static-analysis gate locally — the same checks CI requires:
#
#   scripts/lint.sh [packages ...]
#
# Packages default to ./... . Always runs go vet and the in-repo
# squid-lint analyzer suite (see DESIGN.md §4e); staticcheck and
# govulncheck run too when they are on PATH (CI installs them, local
# machines may not have them).
set -euo pipefail
cd "$(dirname "$0")/.."
pkgs=("${@:-./...}")

echo "== go vet ${pkgs[*]}"
go vet "${pkgs[@]}"

echo "== squid-lint ${pkgs[*]}"
go run ./cmd/squid-lint "${pkgs[@]}"

echo "== squid-lint -allocs ${pkgs[*]}"
go run ./cmd/squid-lint -allocs "${pkgs[@]}"

echo "== squid-lint -allows"
go run ./cmd/squid-lint -allows

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ${pkgs[*]}"
  staticcheck "${pkgs[@]}"
else
  echo "== staticcheck: not installed, skipping (CI runs it)"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck ${pkgs[*]}"
  govulncheck "${pkgs[@]}"
else
  echo "== govulncheck: not installed, skipping (CI runs it)"
fi

echo "lint: clean"
