module squid

go 1.23
